// Rowhammer / RowPress disturbance fault model (§2.5).
//
// Physics modeled:
//  - Activating (ACT) an aggressor row disturbs charge in nearby rows *in the
//    same subarray*; rows in other subarrays are electrically isolated and
//    unaffected. This containment is the property Siloz builds on.
//  - Disturbance accumulates per victim between refreshes of that victim;
//    when it crosses the victim's (per-row, DIMM-dependent) Rowhammer
//    threshold, bits flip.
//  - An ACT refreshes the activated row itself.
//  - Distance-2 neighbours receive a fraction of the disturbance
//    (Half-Double-style).
//  - RowPress: a row *held open* disturbs neighbours proportionally to its
//    open time.
//
// Adjacency is computed on INTERNAL row addresses (post remap chain, see
// remap.h), and the subarray size used here is the silicon ground truth —
// deliberately independent of the subarray size Siloz *presumes* via its boot
// parameter, so misconfiguration is observable (§7.4).
#ifndef SILOZ_SRC_DRAM_FAULT_MODEL_H_
#define SILOZ_SRC_DRAM_FAULT_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/dram/remap.h"

namespace siloz {

// Per-DIMM-model fault characteristics. Thresholds are in units of
// activations within one 64 ms refresh window. The defaults are in the range
// reported for modern server DDR4 (tens of thousands of ACTs).
struct DisturbanceProfile {
  // Mean/spread of the per-row Rowhammer threshold. Per-row values are
  // deterministic in (seed, bank, side, row).
  double threshold_mean = 50000.0;
  double threshold_spread = 0.3;  // rows vary uniformly in mean*(1 +/- spread)
  // Weight of distance-2 aggressors relative to distance-1.
  double distance2_factor = 0.2;
  // RowPress: equivalent ACT count contributed per nanosecond a neighbouring
  // row is held open past tRAS.
  double rowpress_acts_per_ns = 1.0 / 3000.0;
  // Bits flipped per threshold crossing: 1 + Geometric(extra_flip_prob).
  double extra_flip_prob = 0.35;
  // Seed for per-row thresholds and flip positions.
  uint64_t seed = 0x51102;
};

// Maximum internal-row distance over which a profile's disturbance reaches a
// victim. Guard bands and the static isolation audit must fence at least this
// many rows; keeping it derived from the profile ties them to the same
// physics the dynamic model applies.
inline constexpr uint32_t BlastRadiusRows(const DisturbanceProfile& profile) {
  return profile.distance2_factor > 0.0 ? 2 : 1;
}

// A flip in internal coordinates: bit index within one half-row (the device
// maps it back to a media row + byte).
struct InternalFlip {
  uint32_t victim_row = 0;  // internal row
  uint32_t bit = 0;         // bit within the 4 KiB half-row
};

// Tracks disturbance accumulation for all victims of one DIMM.
//
// Keys are (bank_key, side, internal_row) where bank_key identifies the
// rank+bank within the DIMM. Victims are tracked sparsely: commodity access
// patterns never cross thresholds, so the map stays small.
class DisturbanceModel {
 public:
  // `half_row_bits` = bits per half-row (4 KiB * 8 by default);
  // `rows_per_subarray` is the silicon ground truth;
  // `rows_per_bank` bounds row indices.
  DisturbanceModel(DisturbanceProfile profile, uint32_t rows_per_bank,
                   uint32_t rows_per_subarray, uint32_t half_row_bits);

  // Record one activation of `internal_row`. Disturbs same-subarray
  // neighbours and refreshes the aggressor itself. Returns flips triggered by
  // this ACT (in victims, never in the aggressor).
  std::vector<InternalFlip> OnActivate(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                       uint64_t now_ns);

  // Record that `internal_row` was held open for `open_ns` beyond nominal
  // tRAS (RowPress, §2.5).
  std::vector<InternalFlip> OnRowOpen(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                      uint64_t open_ns, uint64_t now_ns);

  // Refresh `internal_row` ahead of schedule (TRR or software refresh):
  // clears its accumulated disturbance.
  void RefreshRow(uint32_t bank_key, HalfRowSide side, uint32_t internal_row, uint64_t now_ns);

  // Deterministic per-row threshold (exposed for tests/analysis).
  double ThresholdFor(uint32_t bank_key, HalfRowSide side, uint32_t internal_row) const;

  uint32_t rows_per_subarray() const { return rows_per_subarray_; }
  uint64_t total_flip_events() const { return total_flip_events_; }
  // Victim probes: how many times disturbance was charged to some victim
  // row (one per in-bounds, same-subarray neighbour per ACT / row-open).
  uint64_t disturb_probes() const { return disturb_probes_; }

 private:
  struct VictimState {
    double disturbance = 0.0;   // accumulated since last refresh of this row
    uint64_t refresh_epoch = 0; // auto-refresh epoch the disturbance belongs to
    uint32_t crossings = 0;     // threshold crossings already converted to flips
  };

  // Auto-refresh: every row is refreshed once per 64 ms window, staggered by
  // its refresh bin. Returns the current epoch for the row at `now_ns`.
  uint64_t EpochFor(uint32_t internal_row, uint64_t now_ns) const;

  std::vector<InternalFlip> AddDisturbance(uint32_t bank_key, HalfRowSide side,
                                           uint32_t aggressor_row, double amount, uint64_t now_ns);
  void DisturbVictim(uint32_t bank_key, HalfRowSide side, uint32_t victim_row, double amount,
                     uint64_t now_ns, std::vector<InternalFlip>& flips);

  DisturbanceProfile profile_;
  uint32_t rows_per_bank_;
  uint32_t rows_per_subarray_;
  uint32_t half_row_bits_;
  std::unordered_map<uint64_t, VictimState> victims_;
  Rng flip_rng_;
  uint64_t total_flip_events_ = 0;
  uint64_t disturb_probes_ = 0;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_FAULT_MODEL_H_
