// Rowhammer / RowPress disturbance fault model (§2.5).
//
// Physics modeled:
//  - Activating (ACT) an aggressor row disturbs charge in nearby rows *in the
//    same subarray*; rows in other subarrays are electrically isolated and
//    unaffected. This containment is the property Siloz builds on.
//  - Disturbance accumulates per victim between refreshes of that victim;
//    when it crosses the victim's (per-row, DIMM-dependent) Rowhammer
//    threshold, bits flip.
//  - An ACT refreshes the activated row itself.
//  - Distance-2 neighbours receive a fraction of the disturbance
//    (Half-Double-style).
//  - RowPress: a row *held open* disturbs neighbours proportionally to its
//    open time.
//
// Adjacency is computed on INTERNAL row addresses (post remap chain, see
// remap.h), and the subarray size used here is the silicon ground truth —
// deliberately independent of the subarray size Siloz *presumes* via its boot
// parameter, so misconfiguration is observable (§7.4).
#ifndef SILOZ_SRC_DRAM_FAULT_MODEL_H_
#define SILOZ_SRC_DRAM_FAULT_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/base/check.h"
#include "src/base/fastdiv.h"
#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/dram/remap.h"

namespace siloz {

// Per-DIMM-model fault characteristics. Thresholds are in units of
// activations within one 64 ms refresh window. The defaults are in the range
// reported for modern server DDR4 (tens of thousands of ACTs).
struct DisturbanceProfile {
  // Mean/spread of the per-row Rowhammer threshold. Per-row values are
  // deterministic in (seed, bank, side, row).
  double threshold_mean = 50000.0;
  double threshold_spread = 0.3;  // rows vary uniformly in mean*(1 +/- spread)
  // Weight of distance-2 aggressors relative to distance-1.
  double distance2_factor = 0.2;
  // RowPress: equivalent ACT count contributed per nanosecond a neighbouring
  // row is held open past tRAS.
  double rowpress_acts_per_ns = 1.0 / 3000.0;
  // Bits flipped per threshold crossing: 1 + Geometric(extra_flip_prob).
  double extra_flip_prob = 0.35;
  // Seed for per-row thresholds and flip positions.
  uint64_t seed = 0x51102;
};

// Maximum internal-row distance over which a profile's disturbance reaches a
// victim. Guard bands and the static isolation audit must fence at least this
// many rows; keeping it derived from the profile ties them to the same
// physics the dynamic model applies.
inline constexpr uint32_t BlastRadiusRows(const DisturbanceProfile& profile) {
  return profile.distance2_factor > 0.0 ? 2 : 1;
}

// A flip in internal coordinates: bit index within one half-row (the device
// maps it back to a media row + byte).
struct InternalFlip {
  uint32_t victim_row = 0;  // internal row
  uint32_t bit = 0;         // bit within the 4 KiB half-row
};

// Caller-owned scratch buffer the disturbance model appends flips into.
//
// The dominant case is an ACT that flips nothing; with the sink reused across
// calls, that case touches no allocator at all (the backing vector keeps its
// capacity across Clear()). Contract: the caller Clear()s before each
// delivery call and consumes flips() before the next one.
class FlipSink {
 public:
  void Clear() { flips_.clear(); }
  void Append(InternalFlip flip) { flips_.push_back(flip); }
  void Reserve(size_t capacity) { flips_.reserve(capacity); }

  bool empty() const { return flips_.empty(); }
  size_t size() const { return flips_.size(); }
  std::span<const InternalFlip> flips() const { return flips_; }

  // Moves the accumulated flips out (convenience-API support).
  std::vector<InternalFlip> Take() { return std::move(flips_); }

 private:
  std::vector<InternalFlip> flips_;
};

// Tracks disturbance accumulation for all victims of one DIMM.
//
// State lives in flat per-(bank, side) subarray slabs indexed directly by
// internal row: an ACT touches the aggressor's slab once and its ≤4 victim
// entries by array index, with the per-row threshold cached in the entry
// after the first probe. Slabs are allocated lazily per subarray (a
// zero-initialized entry is semantically identical to an untracked victim:
// the epoch-mismatch reset normalizes it on first probe), so commodity
// access patterns that hammer a handful of subarrays stay compact.
class DisturbanceModel {
 public:
  // `half_row_bits` = bits per half-row (4 KiB * 8 by default);
  // `rows_per_subarray` is the silicon ground truth;
  // `rows_per_bank` bounds row indices.
  DisturbanceModel(DisturbanceProfile profile, uint32_t rows_per_bank,
                   uint32_t rows_per_subarray, uint32_t half_row_bits);

  // Record one activation of `internal_row`. Disturbs same-subarray
  // neighbours and refreshes the aggressor itself. Appends flips triggered
  // by this ACT (in victims, never in the aggressor) to `sink`. Defined
  // inline below: the whole delivery chain (decode subarray, slab lookup,
  // four victim probes) flattens into the caller, with only the rare
  // threshold-crossing path (EmitFlips) out of line.
  void OnActivate(uint32_t bank_key, HalfRowSide side, uint32_t internal_row, uint64_t now_ns,
                  FlipSink& sink) {
    SILOZ_DCHECK(internal_row < rows_per_bank_);
    const auto subarray = static_cast<uint32_t>(subarray_div_.Divide(internal_row));
    VictimState* slab = SlabFor(bank_key, side, subarray);
    // The ACT refreshes the aggressor row itself. (Writing the fresh epoch
    // into a never-probed entry is equivalent to the epoch normalization a
    // future probe would perform; the threshold cache is untouched.)
    VictimState& self = slab[internal_row - subarray * rows_per_subarray_];
    self.disturbance = 0.0;
    self.crossings = 0;
    self.refresh_epoch = EpochFor(internal_row, now_ns);
    AddDisturbance(bank_key, side, internal_row, subarray, slab, 1.0, now_ns, sink);
  }

  // Record that `internal_row` was held open for `open_ns` beyond nominal
  // tRAS (RowPress, §2.5).
  void OnRowOpen(uint32_t bank_key, HalfRowSide side, uint32_t internal_row, uint64_t open_ns,
                 uint64_t now_ns, FlipSink& sink);

  // Vector-returning conveniences (tests, tools); the device hot path uses
  // the FlipSink overloads.
  std::vector<InternalFlip> OnActivate(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                       uint64_t now_ns);
  std::vector<InternalFlip> OnRowOpen(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                      uint64_t open_ns, uint64_t now_ns);

  // Refresh `internal_row` ahead of schedule (TRR or software refresh):
  // clears its accumulated disturbance. Never allocates: untracked rows are
  // a no-op, as with the auto-refresh epochs.
  void RefreshRow(uint32_t bank_key, HalfRowSide side, uint32_t internal_row, uint64_t now_ns);

  // Deterministic per-row threshold (exposed for tests/analysis).
  double ThresholdFor(uint32_t bank_key, HalfRowSide side, uint32_t internal_row) const;

  uint32_t rows_per_subarray() const { return rows_per_subarray_; }
  uint64_t total_flip_events() const { return total_flip_events_; }
  // Victim probes: how many times disturbance was charged to some victim
  // row (one per in-bounds, same-subarray neighbour per ACT / row-open).
  uint64_t disturb_probes() const { return disturb_probes_; }

 private:
  struct VictimState {
    double disturbance = 0.0;   // accumulated since last refresh of this row
    double threshold = 0.0;     // cached ThresholdFor; 0.0 = not yet computed
    uint64_t refresh_epoch = 0; // auto-refresh epoch the disturbance belongs to
    uint32_t crossings = 0;     // threshold crossings already converted to flips
    uint32_t reserved = 0;      // pads the entry to 32 bytes
  };

  // Auto-refresh: every row is refreshed once per 64 ms window, staggered by
  // its refresh bin. Returns the current epoch for the row at `now_ns`.
  // kRefreshBins is a power of two and kRefreshWindowNs a constant, so this
  // compiles to a mask, a multiply, and a reciprocal multiply.
  uint64_t EpochFor(uint32_t internal_row, uint64_t now_ns) const {
    const uint64_t phase = (internal_row % kRefreshBins) * kRefreshIntervalNs;
    return (now_ns + kRefreshWindowNs - phase) / kRefreshWindowNs;
  }

  // Slab of `rows_per_subarray_` entries for (bank_key, side, subarray),
  // allocated (zeroed) on first use (out-of-line AllocateSlab).
  VictimState* SlabFor(uint32_t bank_key, HalfRowSide side, uint32_t subarray) {
    const size_t slot = static_cast<size_t>(bank_key) * 2 + static_cast<size_t>(side);
    if (slot < slabs_.size()) [[likely]] {
      const std::vector<std::unique_ptr<VictimState[]>>& bank = slabs_[slot];
      if (!bank.empty()) [[likely]] {
        VictimState* slab = bank[subarray].get();
        if (slab != nullptr) [[likely]] {
          return slab;
        }
      }
    }
    return AllocateSlab(slot, subarray);
  }
  VictimState* AllocateSlab(size_t slot, uint32_t subarray);

  void AddDisturbance(uint32_t bank_key, HalfRowSide side, uint32_t aggressor_row,
                      uint32_t subarray, VictimState* slab, double amount, uint64_t now_ns,
                      FlipSink& sink) {
    const uint32_t base = subarray * rows_per_subarray_;
    const uint32_t offset = aggressor_row - base;
    // Distance-1 and distance-2 neighbours, clipped to the aggressor's
    // subarray: cells in other subarrays are electrically isolated (§2.5).
    // Probe order (-1, +1, -2, +2) is part of the determinism contract: the
    // flip RNG is a single sequential stream.
    if (offset >= 2 && offset + 2 < rows_per_subarray_) [[likely]] {
      // Interior aggressor: all four neighbours are in-slab, no clipping.
      disturb_probes_ += 4;
      const double d2 = amount * profile_.distance2_factor;
      DisturbVictim(bank_key, side, aggressor_row - 1, slab[offset - 1], amount, now_ns, sink);
      DisturbVictim(bank_key, side, aggressor_row + 1, slab[offset + 1], amount, now_ns, sink);
      DisturbVictim(bank_key, side, aggressor_row - 2, slab[offset - 2], d2, now_ns, sink);
      DisturbVictim(bank_key, side, aggressor_row + 2, slab[offset + 2], d2, now_ns, sink);
      return;
    }
    AddDisturbanceClipped(bank_key, side, aggressor_row, base, slab, amount, now_ns, sink);
  }
  void AddDisturbanceClipped(uint32_t bank_key, HalfRowSide side, uint32_t aggressor_row,
                             uint32_t base, VictimState* slab, double amount, uint64_t now_ns,
                             FlipSink& sink);
  void DisturbVictim(uint32_t bank_key, HalfRowSide side, uint32_t victim_row,
                     VictimState& state, double amount, uint64_t now_ns, FlipSink& sink) {
    const uint64_t epoch = EpochFor(victim_row, now_ns);
    if (epoch != state.refresh_epoch) {
      // The row's periodic refresh fired since the last probe: charge
      // restored.
      state.disturbance = 0.0;
      state.crossings = 0;
      state.refresh_epoch = epoch;
    }
    state.disturbance += amount;

    // 0.0 marks "not yet computed": real thresholds are strictly positive
    // for any spread < 1, and an (astronomically unlikely) exact-0.0 draw
    // merely recomputes the same value on each probe.
    if (state.threshold == 0.0) [[unlikely]] {
      state.threshold = ThresholdFor(bank_key, side, victim_row);
    }
    if (state.disturbance >= state.threshold * static_cast<double>(state.crossings + 1))
        [[unlikely]] {
      EmitFlips(victim_row, state, sink);
    }
  }
  // The threshold-crossing tail of a victim probe: converts crossings into
  // hash-positioned bit flips. Rare (thresholds are tens of thousands of
  // ACTs), so it stays out of line to keep DisturbVictim inlineable.
  void EmitFlips(uint32_t victim_row, VictimState& state, FlipSink& sink);

  DisturbanceProfile profile_;
  uint32_t rows_per_bank_;
  uint32_t rows_per_subarray_;
  uint32_t subarrays_per_bank_;
  uint32_t half_row_bits_;
  FastDivider subarray_div_;  // row -> subarray index
  // slabs_[bank_key * 2 + side][subarray] -> slab (null until touched).
  // bank_key is open-ended (tests use synthetic keys), so the outer vector
  // grows on demand; the inner one is sized subarrays_per_bank_ on first use.
  std::vector<std::vector<std::unique_ptr<VictimState[]>>> slabs_;
  Rng flip_rng_;
  uint64_t total_flip_events_ = 0;
  uint64_t disturb_probes_ = 0;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_FAULT_MODEL_H_
