// DIMM-internal media-to-internal row address transforms (§6, Table 1).
//
// The memory controller addresses rows by *media* address, but server DIMMs
// may internally rewrite row bits before selecting physical wordlines:
//
//  1. DDR4 address mirroring: odd ranks swap bit pairs <b3,b4>, <b5,b6>,
//     <b7,b8> (easier signal routing).
//  2. DDR4 address inversion: B-side half-rows invert bits [b3, b9]
//     (improved signal integrity). Each 8 KiB row is split into an A-side and
//     a B-side half-row (§2.3), so one media row can live at *different*
//     internal rows on the two sides.
//  3. Vendor-specific scrambling: some vendors XOR b1 and b2 with b3.
//  4. Row repair: defective rows are remapped to spare rows, possibly in a
//     different subarray.
//
// Rowhammer adjacency is physical, i.e. defined on *internal* rows; Siloz's
// isolation argument (§6) is that for power-of-2 subarray sizes these
// transforms permute rows subarray-block-to-subarray-block, so media-level
// subarray groups still map onto whole internal subarrays. The fault model
// (fault_model.h) computes neighbours in internal space, making that argument
// load-bearing in this reproduction.
#ifndef SILOZ_SRC_DRAM_REMAP_H_
#define SILOZ_SRC_DRAM_REMAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/dram/geometry.h"

namespace siloz {

// Which half of the rank serves a half-row (§2.3).
enum class HalfRowSide : uint8_t { kA = 0, kB = 1 };

inline const char* HalfRowSideName(HalfRowSide side) {
  return side == HalfRowSide::kA ? "A" : "B";
}

// One manufacturing-time row repair: media row `from_row` of (rank, bank) is
// served by spare internal row `to_row`.
struct RowRepair {
  uint32_t rank = 0;
  uint32_t bank = 0;
  uint32_t from_row = 0;
  uint32_t to_row = 0;
};

// Per-DIMM remap behaviour. Defaults model the paper's evaluation DIMMs:
// mirroring and inversion per the DDR4 standard, no vendor scrambling, no
// repairs.
struct RemapConfig {
  bool address_mirroring = true;
  bool address_inversion = true;
  bool vendor_scrambling = false;
  std::vector<RowRepair> repairs;
};

// DDR5 interface semantics (§8.2): DDR5RCD02 stipulates that any mirroring
// and inversion applied on the bus must be *undone* before reaching each
// device, so all devices see the same internal addresses — non-power-of-2
// subarray sizes then need no artificial groups.
inline RemapConfig Ddr5RemapConfig() {
  RemapConfig config;
  config.address_mirroring = false;
  config.address_inversion = false;
  return config;
}

// Applies the §6 transform chain for one DIMM.
//
// Mirroring, inversion, and scrambling only ever touch bits [b1, b9], and
// mirroring depends only on rank parity, so the whole chain collapses into a
// per-(rank parity, side) lookup table over the low 10 row bits, built once
// at construction for both directions. ToInternal/ToMedia are then a mask,
// a table load, and an OR — the per-activation hot path pays no branches on
// the transform configuration. The repair maps are consulted only when the
// config actually has repairs.
class RowRemapper {
 public:
  RowRemapper(const DramGeometry& geometry, RemapConfig config);

  // Internal row actually driven when the controller activates `media_row`
  // on (rank, bank), for the given side.
  uint32_t ToInternal(uint32_t media_row, uint32_t rank, uint32_t bank, HalfRowSide side) const {
    SILOZ_DCHECK(media_row < geometry_.rows_per_bank);
    const uint32_t row =
        (media_row & ~kLutMask) |
        to_internal_lut_[rank & 1u][static_cast<uint32_t>(side)][media_row & kLutMask];
    if (has_repairs_) {
      return RepairedToInternal(row, rank, bank);
    }
    return row;
  }

  // Inverse of ToInternal for the non-repaired transform chain; repaired
  // spare rows return the media row they serve, unmapped spares return
  // themselves. (Used by diagnostics and tests.)
  uint32_t ToMedia(uint32_t internal_row, uint32_t rank, uint32_t bank, HalfRowSide side) const {
    uint32_t row = internal_row;
    if (has_repairs_) {
      row = RepairedToMedia(row, rank, bank);
    }
    return (row & ~kLutMask) |
           to_media_lut_[rank & 1u][static_cast<uint32_t>(side)][row & kLutMask];
  }

  const RemapConfig& config() const { return config_; }

  // --- Individual transforms, exposed for tests and Table 1 regeneration ---

  // Mirroring of <b3,b4>, <b5,b6>, <b7,b8>; identity on even ranks.
  static uint32_t ApplyMirroring(uint32_t row, uint32_t rank);
  // Inversion of bits [b3, b9]; identity on the A side.
  static uint32_t ApplyInversion(uint32_t row, HalfRowSide side);
  // Vendor scrambling: b1 ^= b3, b2 ^= b3 (involution).
  static uint32_t ApplyScrambling(uint32_t row);

 private:
  // The transforms are confined to bits [b1, b9]: 1024 entries cover every
  // distinct behaviour of the chain.
  static constexpr uint32_t kLutSize = 1024;
  static constexpr uint32_t kLutMask = kLutSize - 1;

  // Out-of-line slow paths keep the inline hot path small.
  uint32_t RepairedToInternal(uint32_t row, uint32_t rank, uint32_t bank) const;
  uint32_t RepairedToMedia(uint32_t row, uint32_t rank, uint32_t bank) const;

  DramGeometry geometry_;
  RemapConfig config_;
  // (rank, bank, post-transform row) -> spare row, and the reverse.
  std::unordered_map<uint64_t, uint32_t> repair_map_;
  std::unordered_map<uint64_t, uint32_t> reverse_repair_map_;
  bool has_repairs_ = false;
  // [rank parity][side][low row bits] for the full transform chain and its
  // inverse. uint16_t: every value is < kLutSize.
  uint16_t to_internal_lut_[2][2][kLutSize];
  uint16_t to_media_lut_[2][2][kLutSize];
};

// Analysis used by tests and by Siloz's boot-time soundness check: does every
// media subarray of `rows_per_subarray` rows map onto exactly one internal
// subarray for all rank/side combinations? True for power-of-2 sizes in
// [512, 2048]; false e.g. for 768-row subarrays (§6).
bool TransformsPreserveSubarrayBlocks(const DramGeometry& geometry, const RemapConfig& config,
                                      uint32_t rows_per_subarray);

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_REMAP_H_
