#include "src/dram/remap.h"

#include <algorithm>

#include "src/base/bitops.h"
#include "src/base/check.h"

namespace siloz {
namespace {

uint64_t RepairKey(uint32_t rank, uint32_t bank, uint32_t row) {
  return (static_cast<uint64_t>(rank) << 48) | (static_cast<uint64_t>(bank) << 32) | row;
}

}  // namespace

RowRemapper::RowRemapper(const DramGeometry& geometry, RemapConfig config)
    : geometry_(geometry), config_(std::move(config)) {
  for (const RowRepair& repair : config_.repairs) {
    SILOZ_CHECK_LT(repair.rank, geometry_.ranks_per_dimm);
    SILOZ_CHECK_LT(repair.bank, geometry_.banks_per_rank);
    SILOZ_CHECK_LT(repair.from_row, geometry_.rows_per_bank);
    SILOZ_CHECK_LT(repair.to_row, geometry_.rows_per_bank);
    const uint64_t key = RepairKey(repair.rank, repair.bank, repair.from_row);
    SILOZ_CHECK(repair_map_.emplace(key, repair.to_row).second)
        << "duplicate repair for row " << repair.from_row;
    reverse_repair_map_.emplace(RepairKey(repair.rank, repair.bank, repair.to_row),
                                repair.from_row);
  }
}

uint32_t RowRemapper::ApplyMirroring(uint32_t row, uint32_t rank) {
  if ((rank & 1u) == 0) {
    return row;
  }
  uint64_t r = row;
  r = SwapBits(r, 3, 4);
  r = SwapBits(r, 5, 6);
  r = SwapBits(r, 7, 8);
  return static_cast<uint32_t>(r);
}

uint32_t RowRemapper::ApplyInversion(uint32_t row, HalfRowSide side) {
  if (side == HalfRowSide::kA) {
    return row;
  }
  // Invert bits [b3, b9].
  return row ^ 0b11'1111'1000u;
}

uint32_t RowRemapper::ApplyScrambling(uint32_t row) {
  const uint64_t b3 = GetBit(row, 3);
  uint64_t r = XorBit(row, 1, b3);
  r = XorBit(r, 2, b3);
  return static_cast<uint32_t>(r);
}

uint32_t RowRemapper::ToInternal(uint32_t media_row, uint32_t rank, uint32_t bank,
                                 HalfRowSide side) const {
  SILOZ_DCHECK(media_row < geometry_.rows_per_bank);
  uint32_t row = media_row;
  // RCD-level transforms first (mirroring on the address bus, inversion on
  // the B-side copy of the bus), then device-level scrambling, then the
  // device's repair lookup. Mirroring and inversion commute (bitwise swap and
  // XOR over the same range), so the order of the first two is immaterial.
  if (config_.address_mirroring) {
    row = ApplyMirroring(row, rank);
  }
  if (config_.address_inversion) {
    row = ApplyInversion(row, side);
  }
  if (config_.vendor_scrambling) {
    row = ApplyScrambling(row);
  }
  if (!repair_map_.empty()) {
    auto it = repair_map_.find(RepairKey(rank, bank, row));
    if (it != repair_map_.end()) {
      row = it->second;
    }
  }
  return row;
}

uint32_t RowRemapper::ToMedia(uint32_t internal_row, uint32_t rank, uint32_t bank,
                              HalfRowSide side) const {
  uint32_t row = internal_row;
  if (!reverse_repair_map_.empty()) {
    auto it = reverse_repair_map_.find(RepairKey(rank, bank, row));
    if (it != reverse_repair_map_.end()) {
      row = it->second;
    }
  }
  // Scrambling is an involution: b1/b2 are XORed with b3, which scrambling
  // itself never modifies, so applying it twice restores the original.
  if (config_.vendor_scrambling) {
    row = ApplyScrambling(row);
  }
  // Inversion is an XOR (involution); mirroring is a swap (involution).
  if (config_.address_inversion) {
    row = ApplyInversion(row, side);
  }
  if (config_.address_mirroring) {
    row = ApplyMirroring(row, rank);
  }
  return row;
}

bool TransformsPreserveSubarrayBlocks(const DramGeometry& geometry, const RemapConfig& config,
                                      uint32_t rows_per_subarray) {
  SILOZ_CHECK_GT(rows_per_subarray, 0u);
  // Repairs are handled separately (offlining, §6); analyze the bit-level
  // transforms only.
  RemapConfig no_repairs = config;
  no_repairs.repairs.clear();
  RowRemapper remapper(geometry, no_repairs);

  // The transforms only touch bits [b1, b9]; checking two subarrays' worth of
  // rows per (rank, side) covers every distinct behaviour, but scanning the
  // whole bank is cheap enough to be exhaustive.
  for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
    for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
      for (uint32_t row = 0; row < geometry.rows_per_bank; row += rows_per_subarray) {
        const uint32_t expected_block =
            remapper.ToInternal(row, rank, /*bank=*/0, side) / rows_per_subarray;
        const uint32_t limit = std::min(row + rows_per_subarray, geometry.rows_per_bank);
        for (uint32_t r = row; r < limit; ++r) {
          const uint32_t internal = remapper.ToInternal(r, rank, /*bank=*/0, side);
          if (internal / rows_per_subarray != expected_block) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace siloz
