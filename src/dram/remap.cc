#include "src/dram/remap.h"

#include <algorithm>

#include "src/base/bitops.h"
#include "src/base/check.h"

namespace siloz {
namespace {

uint64_t RepairKey(uint32_t rank, uint32_t bank, uint32_t row) {
  return (static_cast<uint64_t>(rank) << 48) | (static_cast<uint64_t>(bank) << 32) | row;
}

}  // namespace

RowRemapper::RowRemapper(const DramGeometry& geometry, RemapConfig config)
    : geometry_(geometry), config_(std::move(config)) {
  for (const RowRepair& repair : config_.repairs) {
    SILOZ_CHECK_LT(repair.rank, geometry_.ranks_per_dimm);
    SILOZ_CHECK_LT(repair.bank, geometry_.banks_per_rank);
    SILOZ_CHECK_LT(repair.from_row, geometry_.rows_per_bank);
    SILOZ_CHECK_LT(repair.to_row, geometry_.rows_per_bank);
    const uint64_t key = RepairKey(repair.rank, repair.bank, repair.from_row);
    SILOZ_CHECK(repair_map_.emplace(key, repair.to_row).second)
        << "duplicate repair for row " << repair.from_row;
    reverse_repair_map_.emplace(RepairKey(repair.rank, repair.bank, repair.to_row),
                                repair.from_row);
  }
  has_repairs_ = !repair_map_.empty();

  // Tabulate the transform chain over the low 10 bits for both rank parities
  // and both sides. RCD-level transforms first (mirroring on the address bus,
  // inversion on the B-side copy of the bus), then device-level scrambling;
  // the inverse applies them in reverse order (each is an involution).
  for (uint32_t parity = 0; parity < 2; ++parity) {
    for (uint32_t side_index = 0; side_index < 2; ++side_index) {
      const auto side = static_cast<HalfRowSide>(side_index);
      for (uint32_t low = 0; low < kLutSize; ++low) {
        uint32_t forward = low;
        if (config_.address_mirroring) {
          forward = ApplyMirroring(forward, parity);
        }
        if (config_.address_inversion) {
          forward = ApplyInversion(forward, side);
        }
        if (config_.vendor_scrambling) {
          forward = ApplyScrambling(forward);
        }
        SILOZ_CHECK_LT(forward, kLutSize);
        to_internal_lut_[parity][side_index][low] = static_cast<uint16_t>(forward);

        uint32_t reverse = low;
        if (config_.vendor_scrambling) {
          reverse = ApplyScrambling(reverse);
        }
        if (config_.address_inversion) {
          reverse = ApplyInversion(reverse, side);
        }
        if (config_.address_mirroring) {
          reverse = ApplyMirroring(reverse, parity);
        }
        SILOZ_CHECK_LT(reverse, kLutSize);
        to_media_lut_[parity][side_index][low] = static_cast<uint16_t>(reverse);
      }
    }
  }
}

uint32_t RowRemapper::ApplyMirroring(uint32_t row, uint32_t rank) {
  if ((rank & 1u) == 0) {
    return row;
  }
  uint64_t r = row;
  r = SwapBits(r, 3, 4);
  r = SwapBits(r, 5, 6);
  r = SwapBits(r, 7, 8);
  return static_cast<uint32_t>(r);
}

uint32_t RowRemapper::ApplyInversion(uint32_t row, HalfRowSide side) {
  if (side == HalfRowSide::kA) {
    return row;
  }
  // Invert bits [b3, b9].
  return row ^ 0b11'1111'1000u;
}

uint32_t RowRemapper::ApplyScrambling(uint32_t row) {
  const uint64_t b3 = GetBit(row, 3);
  uint64_t r = XorBit(row, 1, b3);
  r = XorBit(r, 2, b3);
  return static_cast<uint32_t>(r);
}

uint32_t RowRemapper::RepairedToInternal(uint32_t row, uint32_t rank, uint32_t bank) const {
  auto it = repair_map_.find(RepairKey(rank, bank, row));
  return it != repair_map_.end() ? it->second : row;
}

uint32_t RowRemapper::RepairedToMedia(uint32_t row, uint32_t rank, uint32_t bank) const {
  auto it = reverse_repair_map_.find(RepairKey(rank, bank, row));
  return it != reverse_repair_map_.end() ? it->second : row;
}

bool TransformsPreserveSubarrayBlocks(const DramGeometry& geometry, const RemapConfig& config,
                                      uint32_t rows_per_subarray) {
  SILOZ_CHECK_GT(rows_per_subarray, 0u);
  // Repairs are handled separately (offlining, §6); analyze the bit-level
  // transforms only.
  RemapConfig no_repairs = config;
  no_repairs.repairs.clear();
  RowRemapper remapper(geometry, no_repairs);

  // The transforms only touch bits [b1, b9]; checking two subarrays' worth of
  // rows per (rank, side) covers every distinct behaviour, but scanning the
  // whole bank is cheap enough to be exhaustive.
  for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
    for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
      for (uint32_t row = 0; row < geometry.rows_per_bank; row += rows_per_subarray) {
        const uint32_t expected_block =
            remapper.ToInternal(row, rank, /*bank=*/0, side) / rows_per_subarray;
        const uint32_t limit = std::min(row + rows_per_subarray, geometry.rows_per_bank);
        for (uint32_t r = row; r < limit; ++r) {
          const uint32_t internal = remapper.ToInternal(r, rank, /*bank=*/0, side);
          if (internal / rows_per_subarray != expected_block) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace siloz
