#include "src/dram/device.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace siloz {
namespace {

uint64_t LoadWord(const uint8_t* bytes, size_t word_index) {
  uint64_t word = 0;
  std::memcpy(&word, bytes + word_index * 8, 8);
  return word;
}

void StoreWord(uint8_t* bytes, size_t word_index, uint64_t word) {
  std::memcpy(bytes + word_index * 8, &word, 8);
}

}  // namespace

DramDevice::DramDevice(const DramGeometry& geometry, RemapConfig remap_config,
                       DisturbanceProfile disturbance_profile, TrrConfig trr_config,
                       std::string name)
    : geometry_(geometry),
      remapper_(geometry, std::move(remap_config)),
      disturbance_(disturbance_profile, geometry.rows_per_bank, geometry.rows_per_subarray,
                   static_cast<uint32_t>(geometry.row_bytes / 2 * 8)),
      trr_config_(trr_config),
      name_(std::move(name)) {
  SILOZ_CHECK(geometry_.Validate().ok());
  SILOZ_CHECK_EQ(geometry_.row_bytes % 16, 0u);  // two 8-byte-aligned halves
  const uint32_t banks = geometry_.banks_per_dimm();
  bank_state_.resize(banks);
  trr_trackers_.reserve(static_cast<size_t>(banks) * 2);
  for (uint32_t i = 0; i < banks * 2; ++i) {
    trr_trackers_.emplace_back(trr_config_);
  }
  row_slots_.resize(banks);
  // Arena slot: data + flip mask + check bytes, rounded up to cache lines so
  // slots never share a line.
  slot_stride_ = (geometry_.row_bytes * 2 + geometry_.row_bytes / 8 + 63) & ~size_t{63};
  // Geometry-derived reserves: the chunk-pointer vector can cover every row
  // in the DIMM without regrowing (pointers only — the chunks themselves are
  // lazy), and the flip log holds a blast-radius worth of flips per subarray
  // before its first regrowth. Both kill mid-soak reallocation storms.
  const uint64_t max_slots = static_cast<uint64_t>(banks) * geometry_.rows_per_bank;
  arena_.reserve((max_slots + kArenaRowsPerChunk - 1) / kArenaRowsPerChunk);
  flip_log_.reserve(static_cast<size_t>(BlastRadiusRows(disturbance_profile)) * 2 *
                    geometry_.rows_per_subarray);
  flip_scratch_.Reserve(64);
}

DramDevice::~DramDevice() {
  // Deterministic flush point: integer totals only, so the registry values
  // depend on the command stream alone, never on host scheduling. Zero
  // counters are skipped; zero-ness is itself deterministic, so the exported
  // key set still matches across thread counts.
  obs::Registry& registry = obs::Registry::Global();
  const std::string prefix = "dram." + name_ + ".";
  const auto flush = [&](const char* key, uint64_t value) {
    if (value > 0) {
      registry.GetCounter(prefix + key).Add(value);
    }
  };
  flush("act", counters_.activates);
  flush("rd", counters_.reads);
  flush("wr", counters_.writes);
  flush("ref_ticks", counters_.ref_ticks);
  flush("trr_victim_refreshes", counters_.trr_victim_refreshes);
  flush("flips", counters_.bit_flips);
  flush("flips.hammer", counters_.flips_hammer);
  flush("flips.rowpress", counters_.flips_rowpress);
  flush("flips.injected", counters_.flips_injected);
  flush("ecc.corrected", counters_.corrected_words);
  flush("ecc.uncorrectable", counters_.uncorrectable_words);
  flush("ecc.silent", counters_.silent_corruptions);
  flush("disturb.probes", disturbance_.disturb_probes());
  flush("disturb.flip_events", disturbance_.total_flip_events());
}

TrrTracker& DramDevice::Tracker(uint32_t rank, uint32_t bank, HalfRowSide side) {
  return trr_trackers_[BankKey(rank, bank) * 2 + static_cast<uint32_t>(side)];
}

DramDevice::RowRef DramDevice::RowAt(uint32_t slot) const {
  uint8_t* base =
      arena_[slot / kArenaRowsPerChunk].get() + (slot % kArenaRowsPerChunk) * slot_stride_;
  return RowRef{
      .data = base,
      .flip_mask = base + geometry_.row_bytes,
      .check = base + geometry_.row_bytes * 2,
  };
}

uint32_t DramDevice::FindRowSlot(uint32_t rank, uint32_t bank, uint32_t media_row) const {
  const std::vector<uint32_t>& slots = row_slots_[BankKey(rank, bank)];
  return slots.empty() ? kNoSlot : slots[media_row];
}

DramDevice::RowRef DramDevice::GetOrCreateRow(uint32_t rank, uint32_t bank, uint32_t media_row) {
  std::vector<uint32_t>& slots = row_slots_[BankKey(rank, bank)];
  if (slots.empty()) {
    slots.assign(geometry_.rows_per_bank, kNoSlot);
  }
  uint32_t slot = slots[media_row];
  if (slot == kNoSlot) {
    if (slots_used_ % kArenaRowsPerChunk == 0) {
      // make_unique value-initializes: the chunk is born all-zero, which is
      // the canonical never-written row (zero data, zero check, zero mask).
      arena_.push_back(std::make_unique<uint8_t[]>(kArenaRowsPerChunk * slot_stride_));
    }
    slot = slots_used_++;
    slots[media_row] = slot;
  }
  return RowAt(slot);
}

void DramDevice::AdvanceTo(uint64_t now_ns) {
  SILOZ_CHECK_GE(now_ns, now_ns_);
  // TRR work only matters while activations are arriving; bound the per-call
  // tick processing so large idle jumps (e.g. a 24-hour scrub interval) cost
  // O(1). Auto-refresh correctness is independent: the disturbance model
  // computes refresh epochs lazily per victim.
  constexpr uint64_t kMaxTrrTicksPerAdvance = 65536;
  if (next_ref_ns_ <= now_ns) {
    const uint64_t pending = (now_ns - next_ref_ns_) / kRefreshIntervalNs + 1;
    if (pending > kMaxTrrTicksPerAdvance) {
      const uint64_t skipped = pending - kMaxTrrTicksPerAdvance;
      counters_.ref_ticks += skipped;
      next_ref_ns_ += skipped * kRefreshIntervalNs;
    }
  }
  while (next_ref_ns_ <= now_ns) {
    if (!trr_config_.enabled || trr_armed_ == 0) {
      // No tracker holds a count at its threshold, so SelectTargets() would
      // return empty for every bank: each remaining tick is a pure REF with
      // no TRR side effects. Take them all at once — idle refresh windows
      // between hammer patterns are thousands of such ticks per device.
      const uint64_t pending = (now_ns - next_ref_ns_) / kRefreshIntervalNs + 1;
      counters_.ref_ticks += pending;
      next_ref_ns_ += pending * kRefreshIntervalNs;
      break;
    }
    ++counters_.ref_ticks;
    // Each REF gives every bank's TRR logic a chance to proactively refresh
    // victims of its hottest tracked aggressors. Unarmed trackers are
    // skipped: SelectTargets() on them returns empty without mutating.
    for (uint32_t bank_key = 0; bank_key < bank_state_.size(); ++bank_key) {
      for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
        TrrTracker& tracker = trr_trackers_[bank_key * 2 + static_cast<uint32_t>(side)];
        if (!tracker.armed()) {
          continue;
        }
        for (uint32_t aggressor : tracker.SelectTargets()) {
          const auto radius = static_cast<int64_t>(trr_config_.victim_radius);
          for (int64_t delta = -radius; delta <= radius; ++delta) {
            const int64_t victim = static_cast<int64_t>(aggressor) + delta;
            if (victim < 0 || victim >= static_cast<int64_t>(geometry_.rows_per_bank) ||
                delta == 0) {
              continue;
            }
            disturbance_.RefreshRow(bank_key, side, static_cast<uint32_t>(victim),
                                    next_ref_ns_);
            ++counters_.trr_victim_refreshes;
          }
        }
        if (!tracker.armed()) {
          --trr_armed_;
        }
      }
    }
    next_ref_ns_ += kRefreshIntervalNs;
  }
  now_ns_ = now_ns;
}

void DramDevice::CloseOpenRow(uint32_t rank, uint32_t bank, uint64_t now_ns) {
  BankState& state = bank_state_[BankKey(rank, bank)];
  if (state.open_row < 0) {
    return;
  }
  // RowPress: long open intervals disturb neighbours (§2.5). Nominal tRAS-ish
  // open times contribute negligibly through the rowpress_acts_per_ns rate.
  // The charged interval is capped at the longest a controller can hold a
  // row open before mandatory refresh precharges the bank (9*tREFI): a row
  // that idles open in the model beyond that would have been closed by REF.
  const uint64_t open_ns = std::min(now_ns - state.open_since_ns, kMaxRowOpenNs);
  const auto media_row = static_cast<uint32_t>(state.open_row);
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
    flip_scratch_.Clear();
    disturbance_.OnRowOpen(BankKey(rank, bank), side, internal, open_ns, now_ns, flip_scratch_);
    ApplyInternalFlips(rank, bank, side, flip_scratch_.flips(), now_ns, FlipCause::kRowPress);
  }
  state.open_row = -1;
}

void DramDevice::Activate(uint32_t rank, uint32_t bank, uint32_t media_row, uint64_t now_ns) {
  SILOZ_DCHECK(rank < geometry_.ranks_per_dimm);
  SILOZ_DCHECK(bank < geometry_.banks_per_rank);
  SILOZ_DCHECK(media_row < geometry_.rows_per_bank);
  AdvanceTo(now_ns);
  BankState& state = bank_state_[BankKey(rank, bank)];
  if (state.open_row == static_cast<int64_t>(media_row)) {
    return;  // row already open: no new ACT
  }
  CloseOpenRow(rank, bank, now_ns);
  ++counters_.activates;
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
    if (trr_config_.enabled) {
      TrrTracker& tracker = Tracker(rank, bank, side);
      const bool was_armed = tracker.armed();
      tracker.OnActivate(internal);
      trr_armed_ += static_cast<uint32_t>(tracker.armed()) - static_cast<uint32_t>(was_armed);
    }
    flip_scratch_.Clear();
    disturbance_.OnActivate(BankKey(rank, bank), side, internal, now_ns, flip_scratch_);
    ApplyInternalFlips(rank, bank, side, flip_scratch_.flips(), now_ns, FlipCause::kHammer);
  }
  state.open_row = media_row;
  state.open_since_ns = now_ns;
}

void DramDevice::Precharge(uint32_t rank, uint32_t bank, uint64_t now_ns) {
  AdvanceTo(now_ns);
  CloseOpenRow(rank, bank, now_ns);
}

void DramDevice::ApplyInternalFlips(uint32_t rank, uint32_t bank, HalfRowSide side,
                                    std::span<const InternalFlip> flips, uint64_t now_ns,
                                    FlipCause cause) {
  if (flips.empty()) {
    return;
  }
  const uint32_t half_bytes = static_cast<uint32_t>(geometry_.row_bytes / 2);
  for (const InternalFlip& flip : flips) {
    const uint32_t media_row = remapper_.ToMedia(flip.victim_row, rank, bank, side);
    const uint32_t byte_in_half = flip.bit / 8;
    const uint32_t byte_in_row =
        (side == HalfRowSide::kA ? 0 : half_bytes) + byte_in_half;
    ApplyFlipBit(rank, bank, media_row, flip.victim_row, side, byte_in_row,
                 static_cast<uint8_t>(flip.bit % 8), now_ns, cause);
  }
}

void DramDevice::ApplyFlipBit(uint32_t rank, uint32_t bank, uint32_t media_row,
                              uint32_t internal_row, HalfRowSide side, uint32_t byte_in_row,
                              uint8_t bit_in_byte, uint64_t now_ns, FlipCause cause) {
  RowRef row = GetOrCreateRow(rank, bank, media_row);
  const uint8_t mask = static_cast<uint8_t>(1u << bit_in_byte);
  row.data[byte_in_row] ^= mask;
  row.flip_mask[byte_in_row] ^= mask;
  ++counters_.bit_flips;
  switch (cause) {
    case FlipCause::kHammer:
      ++counters_.flips_hammer;
      break;
    case FlipCause::kRowPress:
      ++counters_.flips_rowpress;
      break;
    case FlipCause::kInjected:
      ++counters_.flips_injected;
      break;
  }
  flip_log_.push_back(FlipRecord{
      .rank = rank,
      .bank = bank,
      .media_row = media_row,
      .internal_row = internal_row,
      .side = side,
      .byte_in_row = byte_in_row,
      .bit_in_byte = bit_in_byte,
      .time_ns = now_ns,
  });
}

void DramDevice::InjectFlip(uint32_t rank, uint32_t bank, uint32_t media_row,
                            uint32_t byte_in_row, uint8_t bit_in_byte, uint64_t now_ns) {
  SILOZ_CHECK_LT(byte_in_row, geometry_.row_bytes);
  SILOZ_CHECK_LT(bit_in_byte, 8);
  const uint32_t half_bytes = static_cast<uint32_t>(geometry_.row_bytes / 2);
  const HalfRowSide side = byte_in_row < half_bytes ? HalfRowSide::kA : HalfRowSide::kB;
  const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
  ApplyFlipBit(rank, bank, media_row, internal, side, byte_in_row, bit_in_byte, now_ns,
               FlipCause::kInjected);
}

void DramDevice::RefreshRow(uint32_t rank, uint32_t bank, uint32_t media_row, uint64_t now_ns) {
  AdvanceTo(now_ns);
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
    disturbance_.RefreshRow(BankKey(rank, bank), side, internal, now_ns);
  }
}

void DramDevice::Write(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t column,
                       std::span<const uint8_t> data, uint64_t now_ns) {
  SILOZ_CHECK_LE(column + data.size(), geometry_.row_bytes);
  Activate(rank, bank, media_row, now_ns);
  ++counters_.writes;
  RowRef row = GetOrCreateRow(rank, bank, media_row);
  std::memcpy(row.data + column, data.data(), data.size());
  // Writes overwrite any latent flips in the touched bytes...
  std::memset(row.flip_mask + column, 0, data.size());
  // ...and the controller re-encodes check bits for every touched word.
  const size_t first_word = column / 8;
  const size_t last_word = (column + data.size() - 1) / 8;
  for (size_t w = first_word; w <= last_word; ++w) {
    // Partial-word writes leave flips in the untouched bytes of the word;
    // re-encoding would absorb them into "truth", which matches a real
    // read-modify-write through ECC (the flip becomes permanent data).
    std::memset(row.flip_mask + w * 8, 0, 8);
    row.check[w] = EccEncode(LoadWord(row.data, w));
  }
}

ReadResult DramDevice::Read(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t column,
                            std::span<uint8_t> out, uint64_t now_ns) {
  SILOZ_CHECK_LE(column + out.size(), geometry_.row_bytes);
  Activate(rank, bank, media_row, now_ns);
  ++counters_.reads;
  ReadResult result;
  const uint32_t slot = FindRowSlot(rank, bank, media_row);
  if (slot == kNoSlot) {
    std::memset(out.data(), 0, out.size());  // never-written rows read as zero
    return result;
  }
  RowRef row = RowAt(slot);
  const size_t first_word = column / 8;
  const size_t last_word = (column + out.size() - 1) / 8;
  for (size_t w = first_word; w <= last_word; ++w) {
    const uint64_t raw = LoadWord(row.data, w);
    const uint64_t mask = LoadWord(row.flip_mask, w);
    if (mask == 0) {
      continue;  // fast path: word is clean
    }
    EccDecodeResult decoded = EccDecode(raw, row.check[w]);
    const uint64_t truth = raw ^ mask;
    switch (decoded.outcome) {
      case EccOutcome::kClean:
        // Flips aliased to a valid codeword (even multi-bit aliasing).
        ++result.silently_corrupt_words;
        ++counters_.silent_corruptions;
        break;
      case EccOutcome::kCorrected:
        ++result.corrected_words;
        ++counters_.corrected_words;
        if (decoded.data == truth) {
          // Genuine correction; scrub the word back to health.
          StoreWord(row.data, w, decoded.data);
          StoreWord(row.flip_mask, w, 0);
        } else {
          // Miscorrection (>=3 aliased flips): hardware believes it fixed a
          // single-bit error but the data is wrong.
          StoreWord(row.data, w, decoded.data);
          StoreWord(row.flip_mask, w, decoded.data ^ truth);
          ++result.silently_corrupt_words;
          ++counters_.silent_corruptions;
        }
        if (result.outcome == EccOutcome::kClean) {
          result.outcome = EccOutcome::kCorrected;
        }
        break;
      case EccOutcome::kUncorrectable:
        ++result.uncorrectable_words;
        ++counters_.uncorrectable_words;
        result.outcome = EccOutcome::kUncorrectable;
        break;
    }
  }
  std::memcpy(out.data(), row.data + column, out.size());
  return result;
}

uint64_t DramDevice::PatrolScrub(uint64_t now_ns) {
  AdvanceTo(now_ns);
  // Sorted (rank, bank, row) order: BankKey ascends rank-major, and each
  // bank's slot index ascends by media row. The scrub's corrections (and any
  // future logging from here) are therefore independent of insertion order —
  // unlike the old unordered_map walk, whose iteration order was a latent
  // portability hazard for the golden tests.
  const size_t words_per_row = geometry_.row_bytes / 8;
  uint64_t corrected = 0;
  for (const std::vector<uint32_t>& slots : row_slots_) {
    if (slots.empty()) {
      continue;
    }
    for (uint32_t media_row = 0; media_row < slots.size(); ++media_row) {
      const uint32_t slot = slots[media_row];
      if (slot == kNoSlot) {
        continue;
      }
      RowRef row = RowAt(slot);
      for (size_t w = 0; w < words_per_row; ++w) {
        const uint64_t mask = LoadWord(row.flip_mask, w);
        if (mask == 0) {
          continue;
        }
        const uint64_t raw = LoadWord(row.data, w);
        EccDecodeResult decoded = EccDecode(raw, row.check[w]);
        if (decoded.outcome == EccOutcome::kCorrected &&
            decoded.data == (raw ^ mask)) {
          StoreWord(row.data, w, decoded.data);
          StoreWord(row.flip_mask, w, 0);
          ++corrected;
          ++counters_.corrected_words;
        }
      }
    }
  }
  return corrected;
}

}  // namespace siloz
