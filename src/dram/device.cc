#include "src/dram/device.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace siloz {
namespace {

uint64_t LoadWord(const std::vector<uint8_t>& bytes, size_t word_index) {
  uint64_t word = 0;
  std::memcpy(&word, bytes.data() + word_index * 8, 8);
  return word;
}

void StoreWord(std::vector<uint8_t>& bytes, size_t word_index, uint64_t word) {
  std::memcpy(bytes.data() + word_index * 8, &word, 8);
}

}  // namespace

DramDevice::DramDevice(const DramGeometry& geometry, RemapConfig remap_config,
                       DisturbanceProfile disturbance_profile, TrrConfig trr_config,
                       std::string name)
    : geometry_(geometry),
      remapper_(geometry, std::move(remap_config)),
      disturbance_(disturbance_profile, geometry.rows_per_bank, geometry.rows_per_subarray,
                   static_cast<uint32_t>(geometry.row_bytes / 2 * 8)),
      trr_config_(trr_config),
      name_(std::move(name)) {
  SILOZ_CHECK(geometry_.Validate().ok());
  SILOZ_CHECK_EQ(geometry_.row_bytes % 16, 0u);  // two 8-byte-aligned halves
  const uint32_t banks = geometry_.banks_per_dimm();
  bank_state_.resize(banks);
  trr_trackers_.reserve(static_cast<size_t>(banks) * 2);
  for (uint32_t i = 0; i < banks * 2; ++i) {
    trr_trackers_.emplace_back(trr_config_);
  }
}

DramDevice::~DramDevice() {
  // Deterministic flush point: integer totals only, so the registry values
  // depend on the command stream alone, never on host scheduling. Zero
  // counters are skipped; zero-ness is itself deterministic, so the exported
  // key set still matches across thread counts.
  obs::Registry& registry = obs::Registry::Global();
  const std::string prefix = "dram." + name_ + ".";
  const auto flush = [&](const char* key, uint64_t value) {
    if (value > 0) {
      registry.GetCounter(prefix + key).Add(value);
    }
  };
  flush("act", counters_.activates);
  flush("rd", counters_.reads);
  flush("wr", counters_.writes);
  flush("ref_ticks", counters_.ref_ticks);
  flush("trr_victim_refreshes", counters_.trr_victim_refreshes);
  flush("flips", counters_.bit_flips);
  flush("flips.hammer", counters_.flips_hammer);
  flush("flips.rowpress", counters_.flips_rowpress);
  flush("flips.injected", counters_.flips_injected);
  flush("ecc.corrected", counters_.corrected_words);
  flush("ecc.uncorrectable", counters_.uncorrectable_words);
  flush("ecc.silent", counters_.silent_corruptions);
  flush("disturb.probes", disturbance_.disturb_probes());
  flush("disturb.flip_events", disturbance_.total_flip_events());
}

TrrTracker& DramDevice::Tracker(uint32_t rank, uint32_t bank, HalfRowSide side) {
  return trr_trackers_[BankKey(rank, bank) * 2 + static_cast<uint32_t>(side)];
}

DramDevice::StoredRow& DramDevice::GetOrCreateRow(uint32_t rank, uint32_t bank,
                                                  uint32_t media_row) {
  StoredRow& row = rows_[RowKey(rank, bank, media_row)];
  if (row.data.empty()) {
    row.data.assign(geometry_.row_bytes, 0);
    // EccEncode(0) == 0, so zero check bytes are consistent with zero data.
    row.check.assign(geometry_.row_bytes / 8, 0);
    row.flip_mask.assign(geometry_.row_bytes, 0);
  }
  return row;
}

void DramDevice::AdvanceTo(uint64_t now_ns) {
  SILOZ_CHECK_GE(now_ns, now_ns_);
  // TRR work only matters while activations are arriving; bound the per-call
  // tick processing so large idle jumps (e.g. a 24-hour scrub interval) cost
  // O(1). Auto-refresh correctness is independent: the disturbance model
  // computes refresh epochs lazily per victim.
  constexpr uint64_t kMaxTrrTicksPerAdvance = 65536;
  if (next_ref_ns_ <= now_ns) {
    const uint64_t pending = (now_ns - next_ref_ns_) / kRefreshIntervalNs + 1;
    if (pending > kMaxTrrTicksPerAdvance) {
      const uint64_t skipped = pending - kMaxTrrTicksPerAdvance;
      counters_.ref_ticks += skipped;
      next_ref_ns_ += skipped * kRefreshIntervalNs;
    }
  }
  while (next_ref_ns_ <= now_ns) {
    ++counters_.ref_ticks;
    if (trr_config_.enabled) {
      // Each REF gives every bank's TRR logic a chance to proactively
      // refresh victims of its hottest tracked aggressors.
      for (uint32_t bank_key = 0; bank_key < bank_state_.size(); ++bank_key) {
        for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
          TrrTracker& tracker = trr_trackers_[bank_key * 2 + static_cast<uint32_t>(side)];
          if (tracker.tracked_rows() == 0) {
            continue;
          }
          for (uint32_t aggressor : tracker.SelectTargets()) {
            const auto radius = static_cast<int64_t>(trr_config_.victim_radius);
            for (int64_t delta = -radius; delta <= radius; ++delta) {
              const int64_t victim = static_cast<int64_t>(aggressor) + delta;
              if (victim < 0 || victim >= static_cast<int64_t>(geometry_.rows_per_bank) ||
                  delta == 0) {
                continue;
              }
              disturbance_.RefreshRow(bank_key, side, static_cast<uint32_t>(victim),
                                      next_ref_ns_);
              ++counters_.trr_victim_refreshes;
            }
          }
        }
      }
    }
    next_ref_ns_ += kRefreshIntervalNs;
  }
  now_ns_ = now_ns;
}

void DramDevice::CloseOpenRow(uint32_t rank, uint32_t bank, uint64_t now_ns) {
  BankState& state = bank_state_[BankKey(rank, bank)];
  if (state.open_row < 0) {
    return;
  }
  // RowPress: long open intervals disturb neighbours (§2.5). Nominal tRAS-ish
  // open times contribute negligibly through the rowpress_acts_per_ns rate.
  // The charged interval is capped at the longest a controller can hold a
  // row open before mandatory refresh precharges the bank (9*tREFI): a row
  // that idles open in the model beyond that would have been closed by REF.
  const uint64_t open_ns = std::min(now_ns - state.open_since_ns, kMaxRowOpenNs);
  const auto media_row = static_cast<uint32_t>(state.open_row);
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
    auto flips = disturbance_.OnRowOpen(BankKey(rank, bank), side, internal, open_ns, now_ns);
    ApplyInternalFlips(rank, bank, side, flips, now_ns, FlipCause::kRowPress);
  }
  state.open_row = -1;
}

void DramDevice::Activate(uint32_t rank, uint32_t bank, uint32_t media_row, uint64_t now_ns) {
  SILOZ_DCHECK(rank < geometry_.ranks_per_dimm);
  SILOZ_DCHECK(bank < geometry_.banks_per_rank);
  SILOZ_DCHECK(media_row < geometry_.rows_per_bank);
  AdvanceTo(now_ns);
  BankState& state = bank_state_[BankKey(rank, bank)];
  if (state.open_row == static_cast<int64_t>(media_row)) {
    return;  // row already open: no new ACT
  }
  CloseOpenRow(rank, bank, now_ns);
  ++counters_.activates;
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
    if (trr_config_.enabled) {
      Tracker(rank, bank, side).OnActivate(internal);
    }
    auto flips = disturbance_.OnActivate(BankKey(rank, bank), side, internal, now_ns);
    ApplyInternalFlips(rank, bank, side, flips, now_ns, FlipCause::kHammer);
  }
  state.open_row = media_row;
  state.open_since_ns = now_ns;
}

void DramDevice::Precharge(uint32_t rank, uint32_t bank, uint64_t now_ns) {
  AdvanceTo(now_ns);
  CloseOpenRow(rank, bank, now_ns);
}

void DramDevice::ApplyInternalFlips(uint32_t rank, uint32_t bank, HalfRowSide side,
                                    const std::vector<InternalFlip>& flips, uint64_t now_ns,
                                    FlipCause cause) {
  if (flips.empty()) {
    return;
  }
  const uint32_t half_bytes = static_cast<uint32_t>(geometry_.row_bytes / 2);
  for (const InternalFlip& flip : flips) {
    const uint32_t media_row = remapper_.ToMedia(flip.victim_row, rank, bank, side);
    const uint32_t byte_in_half = flip.bit / 8;
    const uint32_t byte_in_row =
        (side == HalfRowSide::kA ? 0 : half_bytes) + byte_in_half;
    ApplyFlipBit(rank, bank, media_row, flip.victim_row, side, byte_in_row,
                 static_cast<uint8_t>(flip.bit % 8), now_ns, cause);
  }
}

void DramDevice::ApplyFlipBit(uint32_t rank, uint32_t bank, uint32_t media_row,
                              uint32_t internal_row, HalfRowSide side, uint32_t byte_in_row,
                              uint8_t bit_in_byte, uint64_t now_ns, FlipCause cause) {
  StoredRow& row = GetOrCreateRow(rank, bank, media_row);
  const uint8_t mask = static_cast<uint8_t>(1u << bit_in_byte);
  row.data[byte_in_row] ^= mask;
  row.flip_mask[byte_in_row] ^= mask;
  ++counters_.bit_flips;
  switch (cause) {
    case FlipCause::kHammer:
      ++counters_.flips_hammer;
      break;
    case FlipCause::kRowPress:
      ++counters_.flips_rowpress;
      break;
    case FlipCause::kInjected:
      ++counters_.flips_injected;
      break;
  }
  flip_log_.push_back(FlipRecord{
      .rank = rank,
      .bank = bank,
      .media_row = media_row,
      .internal_row = internal_row,
      .side = side,
      .byte_in_row = byte_in_row,
      .bit_in_byte = bit_in_byte,
      .time_ns = now_ns,
  });
}

void DramDevice::InjectFlip(uint32_t rank, uint32_t bank, uint32_t media_row,
                            uint32_t byte_in_row, uint8_t bit_in_byte, uint64_t now_ns) {
  SILOZ_CHECK_LT(byte_in_row, geometry_.row_bytes);
  SILOZ_CHECK_LT(bit_in_byte, 8);
  const uint32_t half_bytes = static_cast<uint32_t>(geometry_.row_bytes / 2);
  const HalfRowSide side = byte_in_row < half_bytes ? HalfRowSide::kA : HalfRowSide::kB;
  const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
  ApplyFlipBit(rank, bank, media_row, internal, side, byte_in_row, bit_in_byte, now_ns,
               FlipCause::kInjected);
}

void DramDevice::RefreshRow(uint32_t rank, uint32_t bank, uint32_t media_row, uint64_t now_ns) {
  AdvanceTo(now_ns);
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper_.ToInternal(media_row, rank, bank, side);
    disturbance_.RefreshRow(BankKey(rank, bank), side, internal, now_ns);
  }
}

void DramDevice::Write(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t column,
                       std::span<const uint8_t> data, uint64_t now_ns) {
  SILOZ_CHECK_LE(column + data.size(), geometry_.row_bytes);
  Activate(rank, bank, media_row, now_ns);
  ++counters_.writes;
  StoredRow& row = GetOrCreateRow(rank, bank, media_row);
  std::memcpy(row.data.data() + column, data.data(), data.size());
  // Writes overwrite any latent flips in the touched bytes...
  std::memset(row.flip_mask.data() + column, 0, data.size());
  // ...and the controller re-encodes check bits for every touched word.
  const size_t first_word = column / 8;
  const size_t last_word = (column + data.size() - 1) / 8;
  for (size_t w = first_word; w <= last_word; ++w) {
    // Partial-word writes leave flips in the untouched bytes of the word;
    // re-encoding would absorb them into "truth", which matches a real
    // read-modify-write through ECC (the flip becomes permanent data).
    std::memset(row.flip_mask.data() + w * 8, 0, 8);
    row.check[w] = EccEncode(LoadWord(row.data, w));
  }
}

ReadResult DramDevice::Read(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t column,
                            std::span<uint8_t> out, uint64_t now_ns) {
  SILOZ_CHECK_LE(column + out.size(), geometry_.row_bytes);
  Activate(rank, bank, media_row, now_ns);
  ++counters_.reads;
  ReadResult result;
  auto it = rows_.find(RowKey(rank, bank, media_row));
  if (it == rows_.end()) {
    std::memset(out.data(), 0, out.size());  // never-written rows read as zero
    return result;
  }
  StoredRow& row = it->second;
  const size_t first_word = column / 8;
  const size_t last_word = (column + out.size() - 1) / 8;
  for (size_t w = first_word; w <= last_word; ++w) {
    const uint64_t raw = LoadWord(row.data, w);
    const uint64_t mask = LoadWord(row.flip_mask, w);
    if (mask == 0) {
      continue;  // fast path: word is clean
    }
    EccDecodeResult decoded = EccDecode(raw, row.check[w]);
    const uint64_t truth = raw ^ mask;
    switch (decoded.outcome) {
      case EccOutcome::kClean:
        // Flips aliased to a valid codeword (even multi-bit aliasing).
        ++result.silently_corrupt_words;
        ++counters_.silent_corruptions;
        break;
      case EccOutcome::kCorrected:
        ++result.corrected_words;
        ++counters_.corrected_words;
        if (decoded.data == truth) {
          // Genuine correction; scrub the word back to health.
          StoreWord(row.data, w, decoded.data);
          StoreWord(row.flip_mask, w, 0);
        } else {
          // Miscorrection (>=3 aliased flips): hardware believes it fixed a
          // single-bit error but the data is wrong.
          StoreWord(row.data, w, decoded.data);
          StoreWord(row.flip_mask, w, decoded.data ^ truth);
          ++result.silently_corrupt_words;
          ++counters_.silent_corruptions;
        }
        if (result.outcome == EccOutcome::kClean) {
          result.outcome = EccOutcome::kCorrected;
        }
        break;
      case EccOutcome::kUncorrectable:
        ++result.uncorrectable_words;
        ++counters_.uncorrectable_words;
        result.outcome = EccOutcome::kUncorrectable;
        break;
    }
  }
  std::memcpy(out.data(), row.data.data() + column, out.size());
  return result;
}

uint64_t DramDevice::PatrolScrub(uint64_t now_ns) {
  AdvanceTo(now_ns);
  uint64_t corrected = 0;
  for (auto& [key, row] : rows_) {
    for (size_t w = 0; w < row.check.size(); ++w) {
      const uint64_t mask = LoadWord(row.flip_mask, w);
      if (mask == 0) {
        continue;
      }
      const uint64_t raw = LoadWord(row.data, w);
      EccDecodeResult decoded = EccDecode(raw, row.check[w]);
      if (decoded.outcome == EccOutcome::kCorrected &&
          decoded.data == (raw ^ mask)) {
        StoreWord(row.data, w, decoded.data);
        StoreWord(row.flip_mask, w, 0);
        ++corrected;
        ++counters_.corrected_words;
      }
    }
  }
  return corrected;
}

}  // namespace siloz
