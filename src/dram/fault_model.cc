#include "src/dram/fault_model.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {
namespace {

uint64_t VictimKey(uint32_t bank_key, HalfRowSide side, uint32_t row) {
  return (static_cast<uint64_t>(bank_key) << 33) | (static_cast<uint64_t>(side) << 32) | row;
}

// Stateless mixer for deterministic per-row properties.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a * 0x9E3779B97F4A7C15ull + b;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

DisturbanceModel::DisturbanceModel(DisturbanceProfile profile, uint32_t rows_per_bank,
                                   uint32_t rows_per_subarray, uint32_t half_row_bits)
    : profile_(profile),
      rows_per_bank_(rows_per_bank),
      rows_per_subarray_(rows_per_subarray),
      half_row_bits_(half_row_bits),
      flip_rng_(profile.seed ^ 0xF11Bull) {
  SILOZ_CHECK_GT(rows_per_subarray_, 0u);
  SILOZ_CHECK_EQ(rows_per_bank_ % rows_per_subarray_, 0u);
  SILOZ_CHECK_GT(profile_.threshold_mean, 0.0);
}

uint64_t DisturbanceModel::EpochFor(uint32_t internal_row, uint64_t now_ns) const {
  // Each row belongs to a refresh bin; its refresh fires at
  // phase = bin * tREFI within every 64 ms window. The epoch counts completed
  // refreshes of this particular row.
  const uint64_t phase = (internal_row % kRefreshBins) * kRefreshIntervalNs;
  return (now_ns + kRefreshWindowNs - phase) / kRefreshWindowNs;
}

double DisturbanceModel::ThresholdFor(uint32_t bank_key, HalfRowSide side,
                                      uint32_t internal_row) const {
  const uint64_t h = Mix(profile_.seed, VictimKey(bank_key, side, internal_row));
  // Uniform in mean * [1 - spread, 1 + spread].
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return profile_.threshold_mean * (1.0 + profile_.threshold_spread * (2.0 * u - 1.0));
}

void DisturbanceModel::DisturbVictim(uint32_t bank_key, HalfRowSide side, uint32_t victim_row,
                                     double amount, uint64_t now_ns,
                                     std::vector<InternalFlip>& flips) {
  ++disturb_probes_;
  VictimState& state = victims_[VictimKey(bank_key, side, victim_row)];
  const uint64_t epoch = EpochFor(victim_row, now_ns);
  if (epoch != state.refresh_epoch) {
    // The row's periodic refresh fired since we last looked: charge restored.
    state.disturbance = 0.0;
    state.crossings = 0;
    state.refresh_epoch = epoch;
  }
  state.disturbance += amount;

  const double threshold = ThresholdFor(bank_key, side, victim_row);
  while (state.disturbance >= threshold * static_cast<double>(state.crossings + 1)) {
    ++state.crossings;
    ++total_flip_events_;
    // 1 + Geometric(extra_flip_prob) bit flips at hash-determined positions.
    uint32_t flip_count = 1;
    while (flip_rng_.NextBernoulli(profile_.extra_flip_prob)) {
      ++flip_count;
    }
    for (uint32_t i = 0; i < flip_count; ++i) {
      flips.push_back(InternalFlip{
          .victim_row = victim_row,
          .bit = static_cast<uint32_t>(flip_rng_.NextBelow(half_row_bits_)),
      });
    }
  }
}

std::vector<InternalFlip> DisturbanceModel::AddDisturbance(uint32_t bank_key, HalfRowSide side,
                                                           uint32_t aggressor_row, double amount,
                                                           uint64_t now_ns) {
  std::vector<InternalFlip> flips;
  const uint32_t subarray = aggressor_row / rows_per_subarray_;
  // Distance-1 and distance-2 neighbours, clipped to the aggressor's
  // subarray: cells in other subarrays are electrically isolated (§2.5).
  struct Neighbour {
    int64_t row;
    double weight;
  };
  const Neighbour neighbours[] = {
      {static_cast<int64_t>(aggressor_row) - 1, 1.0},
      {static_cast<int64_t>(aggressor_row) + 1, 1.0},
      {static_cast<int64_t>(aggressor_row) - 2, profile_.distance2_factor},
      {static_cast<int64_t>(aggressor_row) + 2, profile_.distance2_factor},
  };
  for (const Neighbour& n : neighbours) {
    if (n.row < 0 || n.row >= static_cast<int64_t>(rows_per_bank_)) {
      continue;
    }
    const auto victim = static_cast<uint32_t>(n.row);
    if (victim / rows_per_subarray_ != subarray) {
      continue;  // subarray isolation boundary
    }
    DisturbVictim(bank_key, side, victim, amount * n.weight, now_ns, flips);
  }
  return flips;
}

std::vector<InternalFlip> DisturbanceModel::OnActivate(uint32_t bank_key, HalfRowSide side,
                                                       uint32_t internal_row, uint64_t now_ns) {
  SILOZ_DCHECK(internal_row < rows_per_bank_);
  // The ACT refreshes the aggressor row itself.
  RefreshRow(bank_key, side, internal_row, now_ns);
  return AddDisturbance(bank_key, side, internal_row, 1.0, now_ns);
}

std::vector<InternalFlip> DisturbanceModel::OnRowOpen(uint32_t bank_key, HalfRowSide side,
                                                      uint32_t internal_row, uint64_t open_ns,
                                                      uint64_t now_ns) {
  const double equivalent_acts = static_cast<double>(open_ns) * profile_.rowpress_acts_per_ns;
  return AddDisturbance(bank_key, side, internal_row, equivalent_acts, now_ns);
}

void DisturbanceModel::RefreshRow(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                  uint64_t now_ns) {
  auto it = victims_.find(VictimKey(bank_key, side, internal_row));
  if (it == victims_.end()) {
    return;
  }
  it->second.disturbance = 0.0;
  it->second.crossings = 0;
  it->second.refresh_epoch = EpochFor(internal_row, now_ns);
}

}  // namespace siloz
