#include "src/dram/fault_model.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {
namespace {

uint64_t VictimKey(uint32_t bank_key, HalfRowSide side, uint32_t row) {
  return (static_cast<uint64_t>(bank_key) << 33) | (static_cast<uint64_t>(side) << 32) | row;
}

// Stateless mixer for deterministic per-row properties.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a * 0x9E3779B97F4A7C15ull + b;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

DisturbanceModel::DisturbanceModel(DisturbanceProfile profile, uint32_t rows_per_bank,
                                   uint32_t rows_per_subarray, uint32_t half_row_bits)
    : profile_(profile),
      rows_per_bank_(rows_per_bank),
      rows_per_subarray_(rows_per_subarray),
      half_row_bits_(half_row_bits),
      flip_rng_(profile.seed ^ 0xF11Bull) {
  SILOZ_CHECK_GT(rows_per_subarray_, 0u);
  SILOZ_CHECK_EQ(rows_per_bank_ % rows_per_subarray_, 0u);
  SILOZ_CHECK_GT(profile_.threshold_mean, 0.0);
  subarrays_per_bank_ = rows_per_bank_ / rows_per_subarray_;
  subarray_div_ = FastDivider(rows_per_subarray_);
}

double DisturbanceModel::ThresholdFor(uint32_t bank_key, HalfRowSide side,
                                      uint32_t internal_row) const {
  const uint64_t h = Mix(profile_.seed, VictimKey(bank_key, side, internal_row));
  // Uniform in mean * [1 - spread, 1 + spread].
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return profile_.threshold_mean * (1.0 + profile_.threshold_spread * (2.0 * u - 1.0));
}

DisturbanceModel::VictimState* DisturbanceModel::AllocateSlab(size_t slot, uint32_t subarray) {
  if (slot >= slabs_.size()) {
    slabs_.resize(slot + 1);
  }
  std::vector<std::unique_ptr<VictimState[]>>& bank = slabs_[slot];
  if (bank.empty()) {
    bank.resize(subarrays_per_bank_);
  }
  std::unique_ptr<VictimState[]>& slab = bank[subarray];
  if (!slab) {
    // Value-initialized: all-zero entries are indistinguishable from
    // never-tracked victims (see DisturbVictim's epoch normalization).
    slab = std::make_unique<VictimState[]>(rows_per_subarray_);
  }
  return slab.get();
}

void DisturbanceModel::EmitFlips(uint32_t victim_row, VictimState& state, FlipSink& sink) {
  const double threshold = state.threshold;
  // Caller established the first crossing; convert it (and any further ones
  // the same probe earned) into 1 + Geometric(extra_flip_prob) flips each, at
  // hash-determined positions.
  do {
    ++state.crossings;
    ++total_flip_events_;
    uint32_t flip_count = 1;
    while (flip_rng_.NextBernoulli(profile_.extra_flip_prob)) {
      ++flip_count;
    }
    for (uint32_t i = 0; i < flip_count; ++i) {
      // siloz-lint: allow(unchecked-status): FlipSink::Append returns void;
      // the flagged name collides with report.h's Status-returning Append.
      sink.Append(InternalFlip{
          .victim_row = victim_row,
          .bit = static_cast<uint32_t>(flip_rng_.NextBelow(half_row_bits_)),
      });
    }
  } while (state.disturbance >= threshold * static_cast<double>(state.crossings + 1));
}

void DisturbanceModel::AddDisturbanceClipped(uint32_t bank_key, HalfRowSide side,
                                             uint32_t aggressor_row, uint32_t base,
                                             VictimState* slab, double amount, uint64_t now_ns,
                                             FlipSink& sink) {
  struct Neighbour {
    int64_t row;
    double weight;
  };
  const Neighbour neighbours[] = {
      {static_cast<int64_t>(aggressor_row) - 1, 1.0},
      {static_cast<int64_t>(aggressor_row) + 1, 1.0},
      {static_cast<int64_t>(aggressor_row) - 2, profile_.distance2_factor},
      {static_cast<int64_t>(aggressor_row) + 2, profile_.distance2_factor},
  };
  for (const Neighbour& n : neighbours) {
    if (n.row < 0 || n.row >= static_cast<int64_t>(rows_per_bank_)) {
      continue;
    }
    const auto victim = static_cast<uint32_t>(n.row);
    if (victim < base || victim >= base + rows_per_subarray_) {
      continue;  // subarray isolation boundary
    }
    ++disturb_probes_;
    DisturbVictim(bank_key, side, victim, slab[victim - base], amount * n.weight, now_ns, sink);
  }
}

void DisturbanceModel::OnRowOpen(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                 uint64_t open_ns, uint64_t now_ns, FlipSink& sink) {
  SILOZ_DCHECK(internal_row < rows_per_bank_);
  const double equivalent_acts = static_cast<double>(open_ns) * profile_.rowpress_acts_per_ns;
  const auto subarray = static_cast<uint32_t>(subarray_div_.Divide(internal_row));
  VictimState* slab = SlabFor(bank_key, side, subarray);
  AddDisturbance(bank_key, side, internal_row, subarray, slab, equivalent_acts, now_ns, sink);
}

std::vector<InternalFlip> DisturbanceModel::OnActivate(uint32_t bank_key, HalfRowSide side,
                                                       uint32_t internal_row, uint64_t now_ns) {
  FlipSink sink;
  OnActivate(bank_key, side, internal_row, now_ns, sink);
  return sink.Take();
}

std::vector<InternalFlip> DisturbanceModel::OnRowOpen(uint32_t bank_key, HalfRowSide side,
                                                      uint32_t internal_row, uint64_t open_ns,
                                                      uint64_t now_ns) {
  FlipSink sink;
  OnRowOpen(bank_key, side, internal_row, open_ns, now_ns, sink);
  return sink.Take();
}

void DisturbanceModel::RefreshRow(uint32_t bank_key, HalfRowSide side, uint32_t internal_row,
                                  uint64_t now_ns) {
  // Non-allocating: a row whose slab was never created carries no
  // disturbance, so refreshing it is a no-op (matching the auto-refresh
  // epochs, which are also lazy).
  const size_t slot = static_cast<size_t>(bank_key) * 2 + static_cast<size_t>(side);
  if (slot >= slabs_.size() || slabs_[slot].empty()) {
    return;
  }
  const auto subarray = static_cast<uint32_t>(subarray_div_.Divide(internal_row));
  const std::unique_ptr<VictimState[]>& slab = slabs_[slot][subarray];
  if (!slab) {
    return;
  }
  VictimState& state = slab[internal_row - subarray * rows_per_subarray_];
  state.disturbance = 0.0;
  state.crossings = 0;
  state.refresh_epoch = EpochFor(internal_row, now_ns);
}

}  // namespace siloz
