#include "src/dram/geometry.h"

#include <sstream>

namespace siloz {

Status DramGeometry::Validate() const {
  if (sockets == 0 || channels_per_socket == 0 || dimms_per_channel == 0 ||
      ranks_per_dimm == 0 || banks_per_rank == 0 || rows_per_bank == 0 || row_bytes == 0) {
    return MakeError(ErrorCode::kInvalidArgument, "geometry has a zero dimension");
  }
  if (rows_per_subarray == 0 || rows_per_bank % rows_per_subarray != 0) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "rows_per_subarray must divide rows_per_bank (got " +
                         std::to_string(rows_per_subarray) + " / " +
                         std::to_string(rows_per_bank) + ")");
  }
  return Status::Ok();
}

std::string DramGeometry::ToString() const {
  std::ostringstream out;
  out << sockets << " socket(s), " << channels_per_socket << " ch/socket, " << dimms_per_channel
      << " DIMM/ch, " << ranks_per_dimm << " rank/DIMM, " << banks_per_rank << " bank/rank; "
      << rows_per_bank << " rows x " << row_bytes << " B; subarray " << rows_per_subarray
      << " rows; bank " << (bank_bytes() >> 20) << " MiB; socket " << (socket_bytes() >> 30)
      << " GiB; subarray group " << (subarray_group_bytes() >> 20) << " MiB";
  return out.str();
}

std::string MediaAddress::ToString() const {
  std::ostringstream out;
  out << "s" << socket << ".ch" << channel << ".d" << dimm << ".r" << rank << ".b" << bank
      << ".row" << row << ".col" << column;
  return out.str();
}

Status ValidateAddress(const DramGeometry& geometry, const MediaAddress& addr) {
  if (addr.socket >= geometry.sockets || addr.channel >= geometry.channels_per_socket ||
      addr.dimm >= geometry.dimms_per_channel || addr.rank >= geometry.ranks_per_dimm ||
      addr.bank >= geometry.banks_per_rank || addr.row >= geometry.rows_per_bank ||
      addr.column >= geometry.row_bytes) {
    return MakeError(ErrorCode::kOutOfRange, "media address outside geometry: " + addr.ToString());
  }
  return Status::Ok();
}

}  // namespace siloz
