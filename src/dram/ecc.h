// SEC-DED ECC codec (Hamming(72,64)) as deployed on server DIMMs (§2.5).
//
// Every 64-bit data word carries 8 check bits: 7 Hamming parity bits plus an
// overall parity bit. Decoding corrects any single-bit error and detects any
// double-bit error (machine check in the device model). Like real SEC-DED,
// >=3 flips can alias to a single-bit syndrome and be *miscorrected* into
// silent corruption — the property that makes ECC insufficient against
// Rowhammer [Cojocar et al., S&P'19]. Hardware cannot tell a miscorrection
// from a correction; the device model reclassifies by comparing against the
// stored true data, for instrumentation only.
#ifndef SILOZ_SRC_DRAM_ECC_H_
#define SILOZ_SRC_DRAM_ECC_H_

#include <cstdint>

namespace siloz {

enum class EccOutcome : uint8_t {
  kClean = 0,      // no error
  kCorrected,      // single-bit error corrected (what the hardware believes)
  kUncorrectable,  // double-bit error detected (machine check)
};

// Compute the 8 check bits for a 64-bit data word.
uint8_t EccEncode(uint64_t data);

struct EccDecodeResult {
  EccOutcome outcome;
  uint64_t data;  // corrected (or, for aliased multi-bit errors, miscorrected)
};

// Decode a (data, check) pair; flips may be present in both data and check.
EccDecodeResult EccDecode(uint64_t data, uint8_t check);

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_ECC_H_
