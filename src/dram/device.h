// DramDevice: functional + fault model of one server DIMM.
//
// The device executes the controller-visible command stream (activate, read,
// write, refresh ticks) against:
//  - the media-to-internal remap chain (remap.h),
//  - the Rowhammer/RowPress disturbance model in internal coordinates
//    (fault_model.h),
//  - a per-(rank,bank,side) TRR tracker consulted on REF ticks (trr.h),
//  - SEC-DED ECC storage: every stored 64-bit word carries check bits and is
//    decoded on read (ecc.h).
//
// Each 8 KiB media row is split into an A-side half (bytes [0, 4 KiB)) and a
// B-side half (bytes [4 KiB, 8 KiB)) which may live at different internal
// rows (§2.3, §6). Bit flips are recorded in a log with both media and
// internal coordinates so experiments can take a census (Table 3).
#ifndef SILOZ_SRC_DRAM_DEVICE_H_
#define SILOZ_SRC_DRAM_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/dram/ecc.h"
#include "src/dram/fault_model.h"
#include "src/dram/geometry.h"
#include "src/dram/remap.h"
#include "src/dram/trr.h"

namespace siloz {

// One observed bit flip, in both coordinate systems.
struct FlipRecord {
  uint32_t rank = 0;
  uint32_t bank = 0;
  uint32_t media_row = 0;     // external row the flipped byte belongs to
  uint32_t internal_row = 0;  // wordline that was disturbed
  HalfRowSide side = HalfRowSide::kA;
  uint32_t byte_in_row = 0;   // within the 8 KiB external row
  uint8_t bit_in_byte = 0;
  uint64_t time_ns = 0;
};

// Aggregate outcome of one read through ECC.
struct ReadResult {
  EccOutcome outcome = EccOutcome::kClean;  // worst word in the range
  uint32_t corrected_words = 0;
  uint32_t uncorrectable_words = 0;
  // Words whose "correction" produced wrong data (>=3 aliased flips) or that
  // carry undetected even->even aliasing; instrumentation only — software in
  // the model cannot see this field.
  uint32_t silently_corrupt_words = 0;
};

// Why a bit flipped: aggressor activations (classic Rowhammer), a row held
// open (RowPress), or a test/experiment injection.
enum class FlipCause : uint8_t { kHammer = 0, kRowPress = 1, kInjected = 2 };

struct DeviceCounters {
  uint64_t activates = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t ref_ticks = 0;
  uint64_t trr_victim_refreshes = 0;
  uint64_t bit_flips = 0;
  uint64_t flips_hammer = 0;    // bit_flips attributed to ACT disturbance
  uint64_t flips_rowpress = 0;  // ... to open-row (RowPress) disturbance
  uint64_t flips_injected = 0;  // ... to InjectFlip
  uint64_t corrected_words = 0;
  uint64_t uncorrectable_words = 0;
  uint64_t silent_corruptions = 0;
};

class DramDevice {
 public:
  // `name` labels the DIMM in experiment output ("A".."F" in Table 3).
  DramDevice(const DramGeometry& geometry, RemapConfig remap_config,
             DisturbanceProfile disturbance_profile, TrrConfig trr_config, std::string name);
  // Flushes the lifetime counters into the global metrics registry.
  ~DramDevice();

  // Activate `media_row` in (rank, bank) at time `now_ns`, implicitly
  // precharging any open row (whose open interval contributes RowPress
  // disturbance). Advances the refresh clock first.
  void Activate(uint32_t rank, uint32_t bank, uint32_t media_row, uint64_t now_ns);

  // Close any open row in (rank, bank).
  void Precharge(uint32_t rank, uint32_t bank, uint64_t now_ns);

  // Write bytes at (media_row, column). Activates the row if not open.
  void Write(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t column,
             std::span<const uint8_t> data, uint64_t now_ns);

  // Read bytes through ECC. Single-bit errors are corrected in place (as a
  // scrubbing controller would); double-bit errors leave data as-is and
  // report kUncorrectable.
  ReadResult Read(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t column,
                  std::span<uint8_t> out, uint64_t now_ns);

  // Advance the device clock, processing REF ticks (auto-refresh epochs are
  // handled lazily by the fault model; TRR victim refreshes happen here).
  void AdvanceTo(uint64_t now_ns);

  // Walk all stored rows through ECC, correcting single-bit errors — the
  // patrol scrub the paper relies on to surface undetected flips (§7.1).
  // Returns the number of corrected words.
  uint64_t PatrolScrub(uint64_t now_ns);

  // Force a bit flip (tests; EPT-corruption experiments).
  void InjectFlip(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t byte_in_row,
                  uint8_t bit_in_byte, uint64_t now_ns);

  // Refresh one media row ahead of schedule on both half-row sides (the
  // primitive a SoftTRR-style software defense drives, §8.3).
  void RefreshRow(uint32_t rank, uint32_t bank, uint32_t media_row, uint64_t now_ns);

  const std::vector<FlipRecord>& flip_log() const { return flip_log_; }
  void ClearFlipLog() { flip_log_.clear(); }
  const DeviceCounters& counters() const { return counters_; }
  const DramGeometry& geometry() const { return geometry_; }
  const RowRemapper& remapper() const { return remapper_; }
  DisturbanceModel& disturbance_model() { return disturbance_; }
  const std::string& name() const { return name_; }

 private:
  // Stored rows live in a chunked arena: per-bank slot index + one backing
  // allocation per kArenaRowsPerChunk rows, each slot holding the row's data
  // bytes, flip-mask bytes, and ECC check bytes contiguously. Chunks are
  // never reallocated, so RowRef pointers stay stable for the device's
  // lifetime; value-initialized chunks are all-zero, which is exactly the
  // never-written row state (EccEncode(0) == 0).
  struct RowRef {
    uint8_t* data = nullptr;       // geometry_.row_bytes
    uint8_t* flip_mask = nullptr;  // geometry_.row_bytes
    uint8_t* check = nullptr;      // geometry_.row_bytes / 8
  };
  struct BankState {
    int64_t open_row = -1;  // media row, -1 = precharged
    uint64_t open_since_ns = 0;
  };
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr uint32_t kArenaRowsPerChunk = 64;

  uint32_t BankKey(uint32_t rank, uint32_t bank) const {
    return rank * geometry_.banks_per_rank + bank;
  }
  RowRef RowAt(uint32_t slot) const;
  // kNoSlot if (rank, bank, media_row) was never stored.
  uint32_t FindRowSlot(uint32_t rank, uint32_t bank, uint32_t media_row) const;
  RowRef GetOrCreateRow(uint32_t rank, uint32_t bank, uint32_t media_row);

  // Map internal-space flips back to media coordinates and apply them.
  void ApplyInternalFlips(uint32_t rank, uint32_t bank, HalfRowSide side,
                          std::span<const InternalFlip> flips, uint64_t now_ns, FlipCause cause);
  void ApplyFlipBit(uint32_t rank, uint32_t bank, uint32_t media_row, uint32_t internal_row,
                    HalfRowSide side, uint32_t byte_in_row, uint8_t bit_in_byte, uint64_t now_ns,
                    FlipCause cause);
  void CloseOpenRow(uint32_t rank, uint32_t bank, uint64_t now_ns);
  TrrTracker& Tracker(uint32_t rank, uint32_t bank, HalfRowSide side);

  DramGeometry geometry_;
  RowRemapper remapper_;
  DisturbanceModel disturbance_;
  TrrConfig trr_config_;
  std::string name_;

  std::vector<BankState> bank_state_;          // indexed by BankKey
  std::vector<TrrTracker> trr_trackers_;       // indexed by BankKey*2 + side
  // Number of trackers currently armed (holding a count at act_threshold).
  // Zero means a REF tick has no TRR work anywhere on the device, letting
  // AdvanceTo() take whole idle windows in O(1).
  uint32_t trr_armed_ = 0;
  // row_slots_[BankKey][media_row] -> arena slot; the per-bank index is
  // sized rows_per_bank on the bank's first stored row.
  std::vector<std::vector<uint32_t>> row_slots_;
  size_t slot_stride_ = 0;  // bytes per arena slot, cache-line aligned
  std::vector<std::unique_ptr<uint8_t[]>> arena_;
  uint32_t slots_used_ = 0;
  FlipSink flip_scratch_;  // reused across ACT/row-open deliveries
  std::vector<FlipRecord> flip_log_;
  DeviceCounters counters_;
  uint64_t now_ns_ = 0;
  uint64_t next_ref_ns_ = kRefreshIntervalNs;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_DEVICE_H_
