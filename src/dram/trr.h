// Target Row Refresh (TRR) model (§2.5).
//
// Deployed in-DRAM TRR tracks frequently-activated rows with a small amount
// of per-bank state and refreshes a subset of their victims ahead of
// schedule. It stops naive double-sided hammering but — because the tracker
// is tiny — can be evicted by many-sided patterns with decoy rows, which is
// exactly how Blacksmith-class fuzzers (and src/attack here) defeat it.
//
// The tracker is Misra-Gries frequent-item estimation over internal row
// addresses, per (rank, bank, side) as real per-chip TRR would be.
#ifndef SILOZ_SRC_DRAM_TRR_H_
#define SILOZ_SRC_DRAM_TRR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace siloz {

struct TrrConfig {
  bool enabled = true;
  // Tracker entries per (rank, bank, side). Real devices are believed to
  // track on the order of a dozen rows.
  uint32_t tracker_entries = 12;
  // Aggressors whose neighbourhoods are refreshed per REF tick.
  uint32_t targets_per_ref = 1;
  // Neighbour radius refreshed around a suspected aggressor.
  uint32_t victim_radius = 2;
  // Minimum tracked count before a row is considered worth refreshing.
  uint64_t act_threshold = 512;
};

// Misra-Gries tracker for one (rank, bank, side).
class TrrTracker {
 public:
  explicit TrrTracker(const TrrConfig& config) : config_(config) {}

  // Record an activation of `internal_row`.
  void OnActivate(uint32_t internal_row);

  // Called on each REF tick; returns the aggressor rows whose neighbourhoods
  // the device will proactively refresh (their counters reset).
  std::vector<uint32_t> SelectTargets();

  size_t tracked_rows() const { return counts_.size(); }

  // True iff some tracked count has reached act_threshold — i.e. the next
  // SelectTargets() call would pick a target. Maintained exactly across
  // every mutation, so REF ticks can skip banks where SelectTargets() would
  // be a no-op (idle refresh windows between hammer patterns are thousands
  // of such ticks per bank).
  bool armed() const { return armed_; }

 private:
  // Recompute armed_ by scanning counts_ (used after bulk decrements).
  void Rearm();

  TrrConfig config_;
  std::unordered_map<uint32_t, uint64_t> counts_;
  bool armed_ = false;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_TRR_H_
