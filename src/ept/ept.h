// Extended page tables (§2.1, §5.4).
//
// A 4-level x86-64-style EPT mapping guest physical addresses (GPAs) to host
// physical addresses (HPAs): PML4 -> PDPT -> PD -> PT, 512 8-byte entries
// per 4 KiB table page. Large mappings terminate early: 1 GiB at PDPT level,
// 2 MiB at PD level (the backing multiple major cloud providers use, §5.4).
//
// Table pages live in simulated physical memory and every walk re-reads the
// entries from there, so DRAM bit flips genuinely corrupt translations —
// which is why Siloz must protect EPT integrity to enforce subarray-group
// isolation. Optional secure-EPT mode models Intel TDX / AMD SNP (§5.4):
// per-table-page checksums held outside DRAM, verified on every walk;
// corruption is *detected* (integrity error), not prevented.
#ifndef SILOZ_SRC_EPT_EPT_H_
#define SILOZ_SRC_EPT_EPT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/ept/phys_memory.h"

namespace siloz {

enum class PageSize : uint8_t { k4K, k2M, k1G };

uint64_t PageSizeBytes(PageSize size);

// Where EPT table pages come from. Siloz instruments this path with the
// GFP_EPT flag (§5.4) to place tables in guard-protected row groups; the
// baseline draws from ordinary node memory.
using EptPageAllocator = std::function<Result<uint64_t>()>;

// Entry encoding (subset of the Intel layout the model needs).
inline constexpr uint64_t kEptPresent = 1ull << 0;
inline constexpr uint64_t kEptLargePage = 1ull << 7;
inline constexpr uint64_t kEptFrameMask = 0x000FFFFFFFFFF000ull;

class ExtendedPageTable {
 public:
  // `secure` enables TDX/SNP-style integrity checksums on table pages.
  // Aborts if the root table cannot be allocated; prefer Create() when the
  // allocator can legitimately be exhausted.
  ExtendedPageTable(PhysMemory& memory, EptPageAllocator allocator, bool secure = false);

  // Fallible construction: returns the allocator's error instead of aborting
  // when it cannot supply the root page.
  static Result<std::unique_ptr<ExtendedPageTable>> Create(PhysMemory& memory,
                                                           EptPageAllocator allocator,
                                                           bool secure = false);

  // Map [gpa, gpa+size) -> [hpa, hpa+size); both must be size-aligned.
  Status Map(uint64_t gpa, uint64_t hpa, PageSize size);

  // Hardware page walk: GPA -> HPA, reading table bytes from physical
  // memory. In secure mode, each visited table page's checksum is verified
  // first; a mismatch returns kIntegrityViolation (detected corruption).
  Result<uint64_t> Translate(uint64_t gpa) const;

  // One present leaf mapping as found by walking the table bytes in memory.
  struct LeafMapping {
    uint64_t gpa = 0;
    uint64_t hpa = 0;
    PageSize size = PageSize::k4K;
  };

  // Enumerates every present leaf mapping by exhaustively walking the table
  // pages (reading entries from physical memory, like Translate does), in
  // ascending GPA order. This reports what the table *bytes* currently say —
  // a hammered entry shows up with its corrupted HPA — which is what the
  // static isolation audit needs to verify containment. In secure mode each
  // visited table page's checksum is verified; the first failure aborts the
  // walk and is returned.
  Status VisitLeafMappings(const std::function<void(const LeafMapping&)>& visit) const;

  uint64_t root_hpa() const { return root_; }
  // HPAs of all table pages (root included): the working set §5.4 bounds.
  const std::vector<uint64_t>& table_pages() const { return table_pages_; }
  size_t table_page_count() const { return table_pages_.size(); }
  bool secure() const { return secure_; }

 private:
  // Non-allocating constructor used by Create(): the caller must follow up
  // with AllocateTablePage() for the root before the table is usable.
  struct DeferRootTag {};
  ExtendedPageTable(DeferRootTag, PhysMemory& memory, EptPageAllocator allocator, bool secure)
      : memory_(memory), allocator_(std::move(allocator)), secure_(secure) {}

  // Index of `gpa` at a given level (0 = PML4 ... 3 = PT).
  static uint32_t LevelIndex(uint64_t gpa, uint32_t level);

  Result<uint64_t> AllocateTablePage();
  void RefreshChecksum(uint64_t table_hpa);
  Status VerifyChecksum(uint64_t table_hpa) const;
  uint64_t ChecksumOf(uint64_t table_hpa) const;

  PhysMemory& memory_;
  EptPageAllocator allocator_;
  bool secure_;
  uint64_t root_ = 0;
  std::vector<uint64_t> table_pages_;
  // Secure-EPT metadata: lives "in the TDX module", not in hammerable DRAM.
  std::unordered_map<uint64_t, uint64_t> checksums_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_EPT_EPT_H_
