#include "src/ept/phys_memory.h"

#include <cstring>

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

uint64_t PhysMemory::ReadU64(uint64_t phys) {
  uint64_t value = 0;
  uint8_t bytes[8];
  ReadPhys(phys, bytes);
  std::memcpy(&value, bytes, 8);
  return value;
}

void PhysMemory::WriteU64(uint64_t phys, uint64_t value) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  WritePhys(phys, bytes);
}


void PhysMemory::CopyPhys(uint64_t dst, uint64_t src, uint64_t bytes) {
  uint8_t buffer[kPage4K];
  while (bytes > 0) {
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(bytes, kPage4K));
    ReadPhys(src, std::span<uint8_t>(buffer, chunk));
    WritePhys(dst, std::span<const uint8_t>(buffer, chunk));
    src += chunk;
    dst += chunk;
    bytes -= chunk;
  }
}

std::vector<uint8_t>& FlatPhysMemory::Frame(uint64_t frame_index) {
  std::vector<uint8_t>& frame = frames_[frame_index];
  if (frame.empty()) {
    frame.assign(kPage4K, 0);
  }
  return frame;
}

void FlatPhysMemory::ReadPhys(uint64_t phys, std::span<uint8_t> out) {
  uint64_t cursor = phys;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t frame_index = cursor / kPage4K;
    const uint64_t offset = cursor % kPage4K;
    const size_t chunk = std::min<size_t>(out.size() - done, kPage4K - offset);
    auto it = frames_.find(frame_index);
    if (it == frames_.end()) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, it->second.data() + offset, chunk);
    }
    done += chunk;
    cursor += chunk;
  }
}

void FlatPhysMemory::WritePhys(uint64_t phys, std::span<const uint8_t> data) {
  uint64_t cursor = phys;
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t frame_index = cursor / kPage4K;
    const uint64_t offset = cursor % kPage4K;
    const size_t chunk = std::min<size_t>(data.size() - done, kPage4K - offset);
    std::memcpy(Frame(frame_index).data() + offset, data.data() + done, chunk);
    done += chunk;
    cursor += chunk;
  }
}


void FlatPhysMemory::CopyPhys(uint64_t dst, uint64_t src, uint64_t bytes) {
  // Ragged (non-frame-aligned) spans are rare and small; stream them.
  if (dst % kPage4K != 0 || src % kPage4K != 0 || bytes % kPage4K != 0) {
    PhysMemory::CopyPhys(dst, src, bytes);
    return;
  }
  for (uint64_t offset = 0; offset < bytes; offset += kPage4K) {
    const uint64_t src_frame = (src + offset) / kPage4K;
    const uint64_t dst_frame = (dst + offset) / kPage4K;
    auto it = frames_.find(src_frame);
    if (it == frames_.end()) {
      // Zero source: the destination must read back zero, but a frame that
      // was never touched already does — drop any stale destination frame
      // instead of materializing 4 KiB of zeros.
      frames_.erase(dst_frame);
    } else {
      std::vector<uint8_t> copy = it->second;  // operator[] below may rehash
      frames_[dst_frame] = std::move(copy);
    }
  }
}

void FlatPhysMemory::FlipBit(uint64_t phys, uint8_t bit) {
  SILOZ_CHECK_LT(bit, 8);
  Frame(phys / kPage4K)[phys % kPage4K] ^= static_cast<uint8_t>(1u << bit);
}

}  // namespace siloz
