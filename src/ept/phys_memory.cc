#include "src/ept/phys_memory.h"

#include <cstring>

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

uint64_t PhysMemory::ReadU64(uint64_t phys) {
  uint64_t value = 0;
  uint8_t bytes[8];
  ReadPhys(phys, bytes);
  std::memcpy(&value, bytes, 8);
  return value;
}

void PhysMemory::WriteU64(uint64_t phys, uint64_t value) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  WritePhys(phys, bytes);
}

std::vector<uint8_t>& FlatPhysMemory::Frame(uint64_t frame_index) {
  std::vector<uint8_t>& frame = frames_[frame_index];
  if (frame.empty()) {
    frame.assign(kPage4K, 0);
  }
  return frame;
}

void FlatPhysMemory::ReadPhys(uint64_t phys, std::span<uint8_t> out) {
  uint64_t cursor = phys;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t frame_index = cursor / kPage4K;
    const uint64_t offset = cursor % kPage4K;
    const size_t chunk = std::min<size_t>(out.size() - done, kPage4K - offset);
    auto it = frames_.find(frame_index);
    if (it == frames_.end()) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, it->second.data() + offset, chunk);
    }
    done += chunk;
    cursor += chunk;
  }
}

void FlatPhysMemory::WritePhys(uint64_t phys, std::span<const uint8_t> data) {
  uint64_t cursor = phys;
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t frame_index = cursor / kPage4K;
    const uint64_t offset = cursor % kPage4K;
    const size_t chunk = std::min<size_t>(data.size() - done, kPage4K - offset);
    std::memcpy(Frame(frame_index).data() + offset, data.data() + done, chunk);
    done += chunk;
    cursor += chunk;
  }
}

void FlatPhysMemory::FlipBit(uint64_t phys, uint8_t bit) {
  SILOZ_CHECK_LT(bit, 8);
  Frame(phys / kPage4K)[phys % kPage4K] ^= static_cast<uint8_t>(1u << bit);
}

}  // namespace siloz
