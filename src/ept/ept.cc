#include "src/ept/ept.h"

#include <array>

#include "src/base/check.h"
#include "src/base/fault_injector.h"
#include "src/base/units.h"

namespace siloz {

uint64_t PageSizeBytes(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return kPage4K;
    case PageSize::k2M:
      return kPage2M;
    case PageSize::k1G:
      return kPage1G;
  }
  return 0;
}

ExtendedPageTable::ExtendedPageTable(PhysMemory& memory, EptPageAllocator allocator, bool secure)
    : memory_(memory), allocator_(std::move(allocator)), secure_(secure) {
  Result<uint64_t> root = AllocateTablePage();
  SILOZ_CHECK(root.ok()) << "cannot allocate EPT root: " << root.error().ToString();
  root_ = *root;
}

Result<std::unique_ptr<ExtendedPageTable>> ExtendedPageTable::Create(PhysMemory& memory,
                                                                     EptPageAllocator allocator,
                                                                     bool secure) {
  // Construct without a root, then allocate it fallibly — the aborting
  // constructor is reserved for callers that treat exhaustion as a bug.
  std::unique_ptr<ExtendedPageTable> ept(
      new ExtendedPageTable(DeferRootTag{}, memory, std::move(allocator), secure));
  Result<uint64_t> root = ept->AllocateTablePage();
  SILOZ_RETURN_IF_ERROR(root);
  ept->root_ = *root;
  return ept;
}

uint32_t ExtendedPageTable::LevelIndex(uint64_t gpa, uint32_t level) {
  // Level 0 = PML4 (bits 47:39) ... level 3 = PT (bits 20:12).
  const unsigned shift = 39 - 9 * level;
  return static_cast<uint32_t>((gpa >> shift) & 0x1FF);
}

Result<uint64_t> ExtendedPageTable::AllocateTablePage() {
  SILOZ_FAULT_POINT("alloc.ept.table_page");
  Result<uint64_t> page = allocator_();
  SILOZ_RETURN_IF_ERROR(page);
  SILOZ_CHECK_EQ(*page % kPage4K, 0u);
  const std::array<uint8_t, 64> zeros{};
  for (uint64_t offset = 0; offset < kPage4K; offset += zeros.size()) {
    memory_.WritePhys(*page + offset, zeros);
  }
  table_pages_.push_back(*page);
  if (secure_) {
    RefreshChecksum(*page);
  }
  return *page;
}

uint64_t ExtendedPageTable::ChecksumOf(uint64_t table_hpa) const {
  // FNV-1a over the page, standing in for the TDX module's MAC.
  std::array<uint8_t, kPage4K> bytes;
  memory_.ReadPhys(table_hpa, bytes);
  uint64_t hash = 0xCBF29CE484222325ull;
  for (uint8_t byte : bytes) {
    hash = (hash ^ byte) * 0x100000001B3ull;
  }
  return hash;
}

void ExtendedPageTable::RefreshChecksum(uint64_t table_hpa) {
  checksums_[table_hpa] = ChecksumOf(table_hpa);
}

Status ExtendedPageTable::VerifyChecksum(uint64_t table_hpa) const {
  auto it = checksums_.find(table_hpa);
  if (it == checksums_.end() || it->second != ChecksumOf(table_hpa)) {
    return MakeError(ErrorCode::kIntegrityViolation,
                     "EPT page at " + std::to_string(table_hpa) + " failed integrity check");
  }
  return Status::Ok();
}

Status ExtendedPageTable::Map(uint64_t gpa, uint64_t hpa, PageSize size) {
  const uint64_t bytes = PageSizeBytes(size);
  if (gpa % bytes != 0 || hpa % bytes != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "gpa/hpa not aligned to page size");
  }
  // Leaf level: PDPT (1) for 1 GiB, PD (2) for 2 MiB, PT (3) for 4 KiB.
  const uint32_t leaf_level = size == PageSize::k1G ? 1 : (size == PageSize::k2M ? 2 : 3);

  uint64_t table = root_;
  for (uint32_t level = 0; level < leaf_level; ++level) {
    const uint64_t entry_addr = table + LevelIndex(gpa, level) * 8;
    uint64_t entry = memory_.ReadU64(entry_addr);
    if ((entry & kEptPresent) == 0) {
      Result<uint64_t> child = AllocateTablePage();
      SILOZ_RETURN_IF_ERROR(child);
      entry = (*child & kEptFrameMask) | kEptPresent;
      memory_.WriteU64(entry_addr, entry);
      if (secure_) {
        RefreshChecksum(table);
      }
    } else if ((entry & kEptLargePage) != 0) {
      return MakeError(ErrorCode::kAlreadyExists, "large mapping already covers this GPA");
    }
    table = entry & kEptFrameMask;
  }

  const uint64_t leaf_addr = table + LevelIndex(gpa, leaf_level) * 8;
  if ((memory_.ReadU64(leaf_addr) & kEptPresent) != 0) {
    return MakeError(ErrorCode::kAlreadyExists, "GPA already mapped");
  }
  uint64_t leaf = (hpa & kEptFrameMask) | kEptPresent;
  if (size != PageSize::k4K) {
    leaf |= kEptLargePage;
  }
  memory_.WriteU64(leaf_addr, leaf);
  if (secure_) {
    RefreshChecksum(table);
  }
  return Status::Ok();
}

Status ExtendedPageTable::VisitLeafMappings(
    const std::function<void(const LeafMapping&)>& visit) const {
  // Depth-first over the 4-level radix tree. GPA bits accumulate per level;
  // 512 entries per table keeps the explicit stack tiny.
  struct Frame {
    uint64_t table;
    uint64_t gpa_base;
    uint32_t level;
    uint32_t index;
  };
  std::vector<Frame> stack{{root_, 0, 0, 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.index == 0 && secure_) {
      SILOZ_RETURN_IF_ERROR(VerifyChecksum(frame.table));
    }
    if (frame.index == 512) {
      stack.pop_back();
      continue;
    }
    const uint32_t index = frame.index++;
    const unsigned shift = 39 - 9 * frame.level;
    const uint64_t gpa = frame.gpa_base + (static_cast<uint64_t>(index) << shift);
    const uint64_t entry = memory_.ReadU64(frame.table + index * 8);
    if ((entry & kEptPresent) == 0) {
      continue;
    }
    const bool is_leaf = frame.level == 3 || (entry & kEptLargePage) != 0;
    if (is_leaf) {
      const PageSize size =
          frame.level == 3 ? PageSize::k4K : (frame.level == 2 ? PageSize::k2M : PageSize::k1G);
      visit(LeafMapping{gpa, entry & kEptFrameMask, size});
      continue;
    }
    stack.push_back(Frame{entry & kEptFrameMask, gpa, frame.level + 1, 0});
  }
  return Status::Ok();
}

Result<uint64_t> ExtendedPageTable::Translate(uint64_t gpa) const {
  uint64_t table = root_;
  for (uint32_t level = 0; level < 4; ++level) {
    if (secure_) {
      SILOZ_RETURN_IF_ERROR(VerifyChecksum(table));
    }
    const uint64_t entry = memory_.ReadU64(table + LevelIndex(gpa, level) * 8);
    if ((entry & kEptPresent) == 0) {
      return MakeError(ErrorCode::kNotFound, "GPA not mapped");
    }
    const bool is_leaf = level == 3 || (entry & kEptLargePage) != 0;
    if (is_leaf) {
      // Offset bits below the leaf's coverage pass through.
      const unsigned shift = level == 3 ? 12 : (level == 2 ? 21 : 30);
      const uint64_t frame = entry & kEptFrameMask;
      // A corrupted entry can set frame bits below the mapping granularity;
      // hardware would honour them, so the model does too.
      return frame + (gpa & ((1ull << shift) - 1));
    }
    table = entry & kEptFrameMask;
  }
  return MakeError(ErrorCode::kNotFound, "GPA not mapped");
}

}  // namespace siloz
