// Physical memory byte access used by the EPT walker.
//
// EPT pages live at host physical addresses; hardware page walks read their
// bytes from DRAM. Routing the walker through this interface means a bit
// flip in simulated DRAM genuinely redirects translation — the attack §5.4
// defends against. FlatPhysMemory is the fast store for unit tests and for
// performance-mode simulation; sim::DramBackedMemory routes through the full
// DramDevice fault model.
#ifndef SILOZ_SRC_EPT_PHYS_MEMORY_H_
#define SILOZ_SRC_EPT_PHYS_MEMORY_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace siloz {

class PhysMemory {
 public:
  virtual ~PhysMemory() = default;

  virtual void ReadPhys(uint64_t phys, std::span<uint8_t> out) = 0;
  virtual void WritePhys(uint64_t phys, std::span<const uint8_t> data) = 0;

  // Copies `bytes` from `src` to `dst` (ranges must not overlap). The base
  // implementation streams 4 KiB chunks through ReadPhys/WritePhys, which is
  // correct for any backing; sparse stores override it so copying a region
  // whose frames were never touched stays O(frames actually materialized) —
  // the property VM migration relies on to move multi-GiB backings cheaply.
  virtual void CopyPhys(uint64_t dst, uint64_t src, uint64_t bytes);

  uint64_t ReadU64(uint64_t phys);
  void WriteU64(uint64_t phys, uint64_t value);
};

// Sparse in-memory frame store (4 KiB frames, zero-filled on first touch).
class FlatPhysMemory final : public PhysMemory {
 public:
  void ReadPhys(uint64_t phys, std::span<uint8_t> out) override;
  void WritePhys(uint64_t phys, std::span<const uint8_t> data) override;
  // Frame-aligned spans copy (or drop, for zero source frames) whole frames
  // without materializing untouched memory; ragged edges fall back to the
  // streaming base implementation.
  void CopyPhys(uint64_t dst, uint64_t src, uint64_t bytes) override;

  // Test helper: flip one bit directly (simulates a Rowhammer hit on a
  // flat-backed configuration).
  void FlipBit(uint64_t phys, uint8_t bit);

  size_t frame_count() const { return frames_.size(); }

 private:
  std::vector<uint8_t>& Frame(uint64_t frame_index);
  std::unordered_map<uint64_t, std::vector<uint8_t>> frames_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_EPT_PHYS_MEMORY_H_
