// Physical memory byte access used by the EPT walker.
//
// EPT pages live at host physical addresses; hardware page walks read their
// bytes from DRAM. Routing the walker through this interface means a bit
// flip in simulated DRAM genuinely redirects translation — the attack §5.4
// defends against. FlatPhysMemory is the fast store for unit tests and for
// performance-mode simulation; sim::DramBackedMemory routes through the full
// DramDevice fault model.
#ifndef SILOZ_SRC_EPT_PHYS_MEMORY_H_
#define SILOZ_SRC_EPT_PHYS_MEMORY_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace siloz {

class PhysMemory {
 public:
  virtual ~PhysMemory() = default;

  virtual void ReadPhys(uint64_t phys, std::span<uint8_t> out) = 0;
  virtual void WritePhys(uint64_t phys, std::span<const uint8_t> data) = 0;

  uint64_t ReadU64(uint64_t phys);
  void WriteU64(uint64_t phys, uint64_t value);
};

// Sparse in-memory frame store (4 KiB frames, zero-filled on first touch).
class FlatPhysMemory final : public PhysMemory {
 public:
  void ReadPhys(uint64_t phys, std::span<uint8_t> out) override;
  void WritePhys(uint64_t phys, std::span<const uint8_t> data) override;

  // Test helper: flip one bit directly (simulates a Rowhammer hit on a
  // flat-backed configuration).
  void FlipBit(uint64_t phys, uint8_t bit);

  size_t frame_count() const { return frames_.size(); }

 private:
  std::vector<uint8_t>& Frame(uint64_t frame_index);
  std::unordered_map<uint64_t, std::vector<uint8_t>> frames_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_EPT_PHYS_MEMORY_H_
