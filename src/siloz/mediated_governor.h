// Rate limiting for exit-induced host memory accesses (§5.1).
//
// Siloz's policy argument: host-mediated pages need no subarray isolation
// because a VM can only drive host accesses through VM exits, and "should
// such confused deputy hammering ever prove feasible, the required VM exit
// means that the host could easily apply its own mitigation (e.g.,
// rate-limiting exit-induced memory accesses)". This module is that
// mitigation: a token bucket per VM over exit-induced host-row activations,
// sized so the permitted ACT rate stays well under any Rowhammer threshold.
#ifndef SILOZ_SRC_SILOZ_MEDIATED_GOVERNOR_H_
#define SILOZ_SRC_SILOZ_MEDIATED_GOVERNOR_H_

#include <cstdint>
#include <map>

#include "src/base/result.h"
#include "src/base/units.h"
#include "src/siloz/vm.h"

namespace siloz {

struct GovernorConfig {
  // Exit-induced host activations allowed per VM per refresh window. A safe
  // budget is far below Rowhammer thresholds (tens of thousands of ACTs):
  // 4096 ACTs / 64 ms supports ordinary virtio rates while making
  // confused-deputy hammering unwinnable.
  uint64_t acts_per_refresh_window = 4096;
};

class MediatedAccessGovernor {
 public:
  explicit MediatedAccessGovernor(GovernorConfig config) : config_(config) {}
  // Flushes total grants/denials into the global metrics registry.
  ~MediatedAccessGovernor();

  // Charge one exit-induced host access by `vm` at time `now_ns`.
  // Ok => the host may perform the access now; kPermissionDenied => the
  // exit is throttled (the hypervisor would defer or penalize the vCPU).
  Status Charge(VmId vm, uint64_t now_ns);

  // Accounting for diagnostics.
  uint64_t throttled(VmId vm) const;
  uint64_t admitted(VmId vm) const;

  // Upper bound on the per-row activation rate any VM can induce in host
  // memory through exits — compare against a Rowhammer threshold to prove
  // the policy sound.
  uint64_t max_acts_per_window() const { return config_.acts_per_refresh_window; }

 private:
  struct Bucket {
    uint64_t window_start_ns = 0;
    uint64_t used = 0;
    uint64_t throttled = 0;
    uint64_t admitted = 0;
  };

  GovernorConfig config_;
  std::map<VmId, Bucket> buckets_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_SILOZ_MEDIATED_GOVERNOR_H_
