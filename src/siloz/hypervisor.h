// The Siloz hypervisor (§5): subarray groups as logical NUMA nodes, private
// per-VM placement, and guard-row-protected EPTs.
//
// The class models the memory-management plane of Linux/KVM with Siloz's
// modifications. With config.enabled == false it behaves as the unmodified
// baseline (one node per socket, EPTs in ordinary memory) so experiments can
// run the same workloads against both kernels, as the paper does.
#ifndef SILOZ_SRC_SILOZ_HYPERVISOR_H_
#define SILOZ_SRC_SILOZ_HYPERVISOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/addr/decoder.h"
#include "src/addr/subarray_group.h"
#include "src/base/mutex.h"
#include "src/base/result.h"
#include "src/ept/ept.h"
#include "src/ept/phys_memory.h"
#include "src/hostmem/cgroup.h"
#include "src/hostmem/numa.h"
#include "src/siloz/config.h"
#include "src/siloz/vm.h"

namespace siloz {

// Thread-safety: the VM lifecycle (CreateVm/DestroyVm/ReleaseVmNodes/
// HostShutdown), the passthrough-device plane, and the allocation-policy
// entry points are serialized on an internal mutex, so concurrent callers
// (the fleet-churn simulator's arrival/departure threads) are safe. Boot()
// must still happen-before any other call, and the objects reachable by
// reference — nodes(), cgroups(), Vm* from GetVm() — are only mutated under
// that mutex by lifecycle operations; callers that mutate them directly
// need external synchronization.
class SilozHypervisor {
 public:
  // `decoder` is the platform's fixed physical-to-media mapping; `memory` is
  // where EPT table bytes live (flat for performance runs, DRAM-backed for
  // security runs).
  SilozHypervisor(const AddressDecoder& decoder, PhysMemory& memory, SilozConfig config);
  // Flushes lifetime event counts into the global metrics registry.
  ~SilozHypervisor();

  SilozHypervisor(const SilozHypervisor&) = delete;
  SilozHypervisor& operator=(const SilozHypervisor&) = delete;

  // Early-boot computation (§5.3): derive subarray groups from the decoder,
  // provision logical nodes, reserve + guard the EPT block, offline guard
  // pages. Must be called exactly once before any allocation.
  Status Boot();

  // --- VM lifecycle (§5.3) ---

  // Creates a VM: reserves guest nodes (whole subarray groups), creates its
  // control group, statically allocates contiguous backing for all
  // unmediated regions, and builds its EPT via the GFP_EPT path.
  Result<VmId> CreateVm(const VmConfig& vm_config);

  // Frees the VM's memory to its nodes' free pools. Per §5.3 the nodes stay
  // reserved until the control group is destroyed (ReleaseVmNodes).
  // Idempotent: destroying an already-destroyed VM is a no-op returning Ok.
  // On a mid-teardown failure the freed prefix is recorded, so a retry after
  // the fault clears resumes where it stopped instead of double-freeing.
  Status DestroyVm(VmId id);

  // Destroys the (dead) VM's control group, returning its nodes to the
  // available pool. Privileged operation.
  Status ReleaseVmNodes(VmId id);

  // Moves a live VM to `target_socket` (§7: the defragmentation remedy for
  // stranded capacity under churn): reserves whole subarray groups there,
  // copies the guest image GPA-for-GPA, rebuilds the EPT from the target
  // socket's protected pool, and retargets the VM's control group. All
  // target-side reservations are transactional — any failure (target
  // exhausted, EPT pool empty, an armed fault point) rolls back and leaves
  // the VM untouched on its source socket. Siloz mode only (the baseline has
  // no subarray-group placement to move); VMs with passthrough devices must
  // drop them first, since their IOMMU tables pin the source placement.
  // The committed placement is re-audited before returning.
  Status MigrateVm(VmId id, uint32_t target_socket);

  Result<Vm*> GetVm(VmId id);

  // --- Passthrough IO (§5.1) ---
  //
  // The prototype's guest IO is paravirtual (virtio): the hypervisor mediates
  // all DMA. Secure SR-IOV passthrough additionally requires (1) an IOMMU
  // that restricts the device's DMAs to the guest's subarray-group ranges,
  // and (2) IOMMU page tables protected like EPT pages. Both are implemented
  // here: the IOMMU table is built from the same protected pool and maps the
  // VM's unmediated regions at their guest-physical addresses (IOVA = GPA).

  // Assigns a passthrough device to a VM; returns a device id.
  Result<uint32_t> AssignPassthroughDevice(VmId vm_id, const std::string& name);

  // A DMA issued by the device at `iova`: translated by its IOMMU and
  // bounds-checked against the owning VM's provisioned ranges. Returns the
  // HPA, or kPermissionDenied / kIntegrityViolation.
  Result<uint64_t> DeviceDma(uint32_t device_id, uint64_t iova);

  // Verifies the device's IOMMU mappings and table-page placement, like
  // AuditVmIsolation does for EPTs.
  Status AuditDeviceIsolation(uint32_t device_id) const;

  // Unassigns a device, returning its IOMMU table pages to the pool.
  Status RemovePassthroughDevice(uint32_t device_id);

  // HPAs of a device's IOMMU table pages (introspection for experiments).
  Result<std::vector<uint64_t>> DeviceTablePages(uint32_t device_id) const;

  // --- Host shutdown (§5.3) ---
  //
  // The privileged shutdown path kills every VM and releases all
  // reservations, ignoring otherwise-active subarray-group constraints.
  Status HostShutdown();

  // --- Allocation policy (§5.1-§5.3), exposed for tests and host use ---

  // Allocate (4 KiB << order) bytes from `node_id` on behalf of `group`.
  // Guest-reserved nodes require the UNMEDIATED flag, membership of the
  // node in the group's cpuset.mems, and KVM privileges.
  Result<uint64_t> AllocatePages(const ControlGroup& group, uint32_t node_id, uint32_t order,
                                 bool unmediated);
  Status FreePages(uint32_t node_id, uint64_t phys, uint32_t order);

  // --- Isolation audit ---

  // Re-walks every mapping of the VM's EPT and verifies each translation
  // lands inside the VM's provisioned ranges (and, for unmediated regions,
  // inside its private subarray groups). A hammered EPT that escaped would
  // fail with kIntegrityViolation; a secure-EPT checksum failure propagates.
  Status AuditVmIsolation(VmId id) const;

  // --- Introspection for experiments ---

  const SilozConfig& config() const { return config_; }
  bool booted() const { return booted_; }
  const SubarrayGroupMap& group_map() const { return *group_map_; }
  // Logical node owning a global subarray group id (Siloz mode only).
  Result<uint32_t> NodeOfGroup(uint32_t group) const;
  NodeRegistry& nodes() { return nodes_; }
  const NodeRegistry& nodes() const { return nodes_; }
  CgroupRegistry& cgroups() { return cgroups_; }
  const CgroupRegistry& cgroups() const { return cgroups_; }
  const AddressDecoder& decoder() const { return decoder_; }

  // Effective subarray size after artificial-group rounding (§6).
  uint32_t effective_rows_per_subarray() const { return effective_rows_per_subarray_; }
  bool using_artificial_groups() const { return using_artificial_groups_; }

  // DRAM reserved for EPT protection: guard pages + EPT row-group pages.
  uint64_t ept_reserved_bytes() const { return ept_reserved_bytes_; }
  // DRAM offlined for artificial-group boundary guards (§6).
  uint64_t artificial_guard_bytes() const { return artificial_guard_bytes_; }
  // DRAM offlined because of quarantined (inter-subarray-repaired) rows (§6).
  uint64_t quarantined_bytes() const { return quarantined_bytes_; }
  // Free pages remaining in the per-socket EPT pools.
  size_t ept_pool_free(uint32_t socket) const;
  // Physical extents holding EPT pages (for hammering experiments).
  const std::vector<PhysRange>& ept_pool_ranges(uint32_t socket) const;

  // Nodes not yet reserved by any VM cgroup, on the given socket.
  std::vector<uint32_t> AvailableGuestNodes(uint32_t socket) const;
  // The host-reserved node of a socket.
  Result<uint32_t> HostNode(uint32_t socket) const;

  // --- Conservation bookkeeping (tested by the fault-injection sweep) ---

  // Guest nodes currently reserved by some VM cgroup.
  size_t owned_node_count() const {
    MutexLock lock(mu_);
    return node_owner_.size();
  }
  // Live entries in the per-VM backing / EPT-page maps. A failed CreateVm
  // must leave no phantom entry behind.
  size_t backing_map_entries() const {
    MutexLock lock(mu_);
    return vm_backing_.size();
  }
  size_t ept_page_map_entries() const {
    MutexLock lock(mu_);
    return vm_ept_pages_.size();
  }
  // EPT/IOMMU table pages drawn from MakeEptAllocator and not yet returned.
  uint64_t ept_pages_held() const {
    MutexLock lock(mu_);
    return ept_pages_held_;
  }

 private:
  struct Backing;  // defined below

  // Lock-requiring bodies of the public lifecycle/device entry points, for
  // callers that already hold mu_ (HostShutdown, the device plane).
  Result<VmId> CreateVmLocked(const VmConfig& vm_config) REQUIRES(mu_);
  Status MigrateVmLocked(VmId id, uint32_t target_socket) REQUIRES(mu_);
  Status AuditVmIsolationLocked(VmId id) const REQUIRES(mu_);
  Status DestroyVmLocked(VmId id) REQUIRES(mu_);
  Status ReleaseVmNodesLocked(VmId id) REQUIRES(mu_);
  Result<Vm*> GetVmLocked(VmId id) REQUIRES(mu_);
  Status RemovePassthroughDeviceLocked(uint32_t device_id) REQUIRES(mu_);
  Status FreePagesLocked(uint32_t node_id, uint64_t phys, uint32_t order) REQUIRES(mu_);
  std::vector<uint32_t> AvailableGuestNodesLocked(uint32_t socket) const REQUIRES(mu_);

  // Contiguously allocate `bytes` from `node` in blocks of `order`,
  // returning the start address (node must have a contiguous free run).
  Result<uint64_t> AllocateContiguous(NumaNode& node, uint64_t bytes, uint32_t order);

  // Allocate `bytes` from `node` as few maximal contiguous runs as possible
  // (guard-row offlining can fragment a group). All-or-nothing.
  Result<std::vector<PhysRange>> AllocateRuns(NumaNode& node, uint64_t bytes, uint32_t order);

  // Physical extent of row group `row` in (socket, cluster): verifies the
  // decoder keeps row groups contiguous (kUnsupported otherwise).
  Result<PhysRange> RowGroupExtent(uint32_t socket, uint32_t cluster, uint32_t row) const;

  // Reserve the §5.4 EPT block in the first host group of each socket:
  // offline the b-1 guard row groups, seed the EPT pool from the EPT row
  // group.
  Status ReserveEptBlocks() REQUIRES(mu_);
  Status OfflineArtificialBoundaryGuards();
  // §6 row-repair handling: offline every page with bytes in a quarantined
  // (inter-subarray-repaired) row.
  Status QuarantineRepairedRows();

  // The returned allocator runs inside CreateVm/AssignPassthroughDevice with
  // mu_ held (its body asserts so).
  EptPageAllocator MakeEptAllocator(uint32_t socket, std::vector<uint64_t>* pages_out);

  // Return one table page drawn from MakeEptAllocator(socket, ...): back to
  // the protected pool in guard mode, else to the socket's host node.
  Status ReturnEptPage(uint32_t socket, uint64_t page) REQUIRES(mu_);

  // Free `backing` block by block, recording progress in place: each freed
  // block advances backing.phys and shrinks backing.bytes, so a failure
  // leaves `backing` describing exactly the still-allocated suffix.
  Status FreeBackingBlocks(Backing& backing);

  // Refresh the hv.ept.* scheduler-domain gauges after pool/held changes.
  void UpdateEptGauges() REQUIRES(mu_);

  // Logical node owning a global subarray group id.
  Result<NumaNode*> NodeFor(uint32_t group);

  const AddressDecoder& decoder_;
  PhysMemory& memory_;
  SilozConfig config_;
  bool booted_ = false;

  // Lifetime event counts, flushed to the metrics registry at destruction.
  // Mutable because const paths (audits, DMA translation) still detect and
  // count integrity violations.
  struct HvCounters {
    uint64_t alloc_pages = 0;      // successful AllocatePages blocks
    uint64_t alloc_denied = 0;     // kPermissionDenied by allocation policy
    uint64_t vms_created = 0;
    uint64_t vms_destroyed = 0;
    uint64_t vms_migrated = 0;
    uint64_t ept_pool_pages = 0;   // pages seeded into per-socket EPT pools
    uint64_t ept_guard_pages = 0;  // guard-row pages offlined around them
    uint64_t ept_violations = 0;   // kIntegrityViolation detections
  };

  // Serializes the VM lifecycle, the device plane, the allocation-policy
  // entry points, and the bookkeeping below. Mutable so const paths (audits,
  // DMA translation) can serialize their violation counting.
  mutable Mutex mu_;

  mutable HvCounters obs_counts_ GUARDED_BY(mu_);

  uint32_t effective_rows_per_subarray_ = 0;
  bool using_artificial_groups_ = false;
  std::unique_ptr<SubarrayGroupMap> group_map_;
  NodeRegistry nodes_;
  CgroupRegistry cgroups_;

  // node id -> owning VM cgroup name (empty when free).
  std::map<uint32_t, std::string> node_owner_ GUARDED_BY(mu_);
  // Boot-time-only layout (stable after Boot(); read without the lock).
  std::vector<uint32_t> host_node_by_socket_;
  // global subarray group id -> node id (Siloz mode only).
  std::vector<uint32_t> node_of_group_;

  // Per-socket EPT page pools (guard-row mode).
  std::vector<std::vector<uint64_t>> ept_pool_ GUARDED_BY(mu_);
  std::vector<std::vector<PhysRange>> ept_pool_ranges_;
  uint64_t ept_reserved_bytes_ = 0;
  uint64_t artificial_guard_bytes_ = 0;
  uint64_t quarantined_bytes_ = 0;

  struct PassthroughDevice {
    std::string name;
    VmId vm;
    std::unique_ptr<ExtendedPageTable> iommu;
    std::vector<uint64_t> table_pages;
  };
  std::map<uint32_t, PassthroughDevice> devices_ GUARDED_BY(mu_);
  uint32_t next_device_id_ GUARDED_BY(mu_) = 1;

  VmId next_vm_id_ GUARDED_BY(mu_) = 1;
  std::map<VmId, std::unique_ptr<Vm>> vms_ GUARDED_BY(mu_);
  std::set<VmId> destroyed_vms_ GUARDED_BY(mu_);
  // Per-VM EPT pages (for release on destroy).
  std::map<VmId, std::vector<uint64_t>> vm_ept_pages_ GUARDED_BY(mu_);
  // Table pages handed out by MakeEptAllocator and not yet returned.
  uint64_t ept_pages_held_ GUARDED_BY(mu_) = 0;
  // Per-VM backing allocations.
  struct Backing {
    uint32_t node;
    uint64_t phys;
    uint64_t bytes;
    uint32_t order;  // block order the run was allocated in
  };
  std::map<VmId, std::vector<Backing>> vm_backing_ GUARDED_BY(mu_);
};

}  // namespace siloz

#endif  // SILOZ_SRC_SILOZ_HYPERVISOR_H_
