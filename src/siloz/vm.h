// A virtual machine as Siloz sees it: reserved logical nodes, memory
// regions, and the EPT enforcing its isolation.
#ifndef SILOZ_SRC_SILOZ_VM_H_
#define SILOZ_SRC_SILOZ_VM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/subarray_group.h"
#include "src/ept/ept.h"
#include "src/siloz/config.h"

namespace siloz {

using VmId = uint32_t;

// One mapped memory region of a VM.
struct VmRegion {
  MemoryType type = MemoryType::kGuestRam;
  uint64_t gpa = 0;
  uint64_t hpa = 0;
  uint64_t bytes = 0;
  PageSize page_size = PageSize::k2M;
};

class Vm {
 public:
  Vm(VmId id, VmConfig config, std::string cgroup_name)
      : id_(id), config_(std::move(config)), cgroup_name_(std::move(cgroup_name)) {}

  VmId id() const { return id_; }
  const VmConfig& config() const { return config_; }
  const std::string& cgroup_name() const { return cgroup_name_; }

  // Logical nodes reserved for this VM's unmediated memory.
  const std::vector<uint32_t>& guest_nodes() const { return guest_nodes_; }
  // Global subarray-group ids those nodes cover.
  const std::vector<uint32_t>& guest_groups() const { return guest_groups_; }
  const std::vector<VmRegion>& regions() const { return regions_; }

  ExtendedPageTable* ept() { return ept_.get(); }
  const ExtendedPageTable* ept() const { return ept_.get(); }

  // Physical ranges the VM may legitimately reach through its EPT
  // (unmediated regions only; mediated regions are host-owned but reachable).
  std::vector<PhysRange> AllowedHpaRanges() const;

  // --- Mutators used by the hypervisor during creation ---
  void AddGuestNode(uint32_t node, uint32_t group) {
    guest_nodes_.push_back(node);
    guest_groups_.push_back(group);
  }
  void AddRegion(VmRegion region) { regions_.push_back(region); }
  void SetEpt(std::unique_ptr<ExtendedPageTable> ept) { ept_ = std::move(ept); }

  // Migration commit: drop the source placement (nodes, groups, regions; the
  // EPT is replaced separately via SetEpt) and move the VM to `socket`. The
  // rest of the config — name, sizes, backing page size — is unchanged.
  void ResetPlacement(uint32_t socket) {
    config_.socket = socket;
    guest_nodes_.clear();
    guest_groups_.clear();
    regions_.clear();
  }

 private:
  VmId id_;
  VmConfig config_;
  std::string cgroup_name_;
  std::vector<uint32_t> guest_nodes_;
  std::vector<uint32_t> guest_groups_;
  std::vector<VmRegion> regions_;
  std::unique_ptr<ExtendedPageTable> ept_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_SILOZ_VM_H_
