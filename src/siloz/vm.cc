#include "src/siloz/vm.h"

namespace siloz {

std::vector<PhysRange> Vm::AllowedHpaRanges() const {
  std::vector<PhysRange> ranges;
  for (const VmRegion& region : regions_) {
    ranges.push_back(PhysRange{region.hpa, region.hpa + region.bytes});
  }
  return ranges;
}

}  // namespace siloz
