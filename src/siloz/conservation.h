// Conservation checking and the CreateVm fault-injection sweep.
//
// The VM lifecycle is transactional (DESIGN.md §11): a failed CreateVm must
// leave the hypervisor bit-identical to its pre-call state, and a full
// create -> destroy -> release cycle must be a fixed point. This module
// captures the state those contracts quantify over — per-node allocator
// accounting, cgroup/node reservations, EPT pool levels, lifecycle map
// entries, and the hv.ept.* gauges — and drives CreateVm once per reachable
// allocation fault point to prove the contracts hold on every error path.
#ifndef SILOZ_SRC_SILOZ_CONSERVATION_H_
#define SILOZ_SRC_SILOZ_CONSERVATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/siloz/hypervisor.h"

namespace siloz {

struct NodeUsage {
  uint64_t free_bytes = 0;
  uint64_t total_bytes = 0;
  uint64_t offlined_bytes = 0;
  bool operator==(const NodeUsage&) const = default;
};

// Everything a failed CreateVm is required to conserve.
struct ConservationSnapshot {
  std::vector<NodeUsage> nodes;         // indexed by node id
  std::vector<uint64_t> ept_pool_free;  // per socket
  size_t cgroups = 0;
  size_t owned_nodes = 0;
  size_t backing_entries = 0;
  size_t ept_page_entries = 0;
  uint64_t ept_pages_held = 0;
  int64_t gauge_pool_free = 0;
  int64_t gauge_pages_in_use = 0;
};

// Captures the hypervisor's resource-accounting state. Requires Boot().
ConservationSnapshot CaptureConservation(const SilozHypervisor& hv);

// Empty string iff `after` is identical to `before`; otherwise a
// human-readable description of every discrepancy.
std::string DiffConservation(const ConservationSnapshot& before,
                             const ConservationSnapshot& after);

struct FaultSweepReport {
  uint64_t points_probed = 0;     // distinct k values exercised
  uint64_t faults_injected = 0;   // probes whose fault actually fired
  uint64_t creates_failed = 0;    // fired faults that made CreateVm fail
  uint64_t creates_survived = 0;  // fired faults CreateVm tolerated
};

// Deterministic sweep: for k = 1, 2, ... arm the global FaultInjector to
// fail the k-th "alloc." call and run CreateVm(vm_config). A failed create
// must match the pre-call snapshot exactly; a successful one (fault
// tolerated, or k past the last reachable point) must make
// create -> destroy -> release a fixed point. Stops at the first k whose
// fault no longer fires. Returns the tally, or the first conservation
// violation / unexpected error.
Result<FaultSweepReport> RunCreateVmFaultSweep(SilozHypervisor& hv, const VmConfig& vm_config,
                                               uint64_t max_points = 100000);

// The same sweep over MigrateVm's error paths: for k = 1, 2, ... create a VM
// from `vm_config`, arm the k-th "alloc." fault, and migrate it to
// `target_socket`. A failed migration must leave the hypervisor identical to
// its post-create snapshot (the VM intact on its source socket); a successful
// one must pass the isolation audit; and either way the full
// create -> migrate -> destroy -> release cycle must restore the pre-create
// snapshot exactly. Stops at the first k whose fault no longer fires. In the
// returned report, creates_failed / creates_survived tally *migrations*.
Result<FaultSweepReport> RunMigrateVmFaultSweep(SilozHypervisor& hv, const VmConfig& vm_config,
                                                uint32_t target_socket,
                                                uint64_t max_points = 100000);

}  // namespace siloz

#endif  // SILOZ_SRC_SILOZ_CONSERVATION_H_
