// Configuration surface of the Siloz hypervisor (§5).
#ifndef SILOZ_SRC_SILOZ_CONFIG_H_
#define SILOZ_SRC_SILOZ_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dram/geometry.h"
#include "src/ept/ept.h"

namespace siloz {

// How EPT integrity is provided (§5.4, §8.3).
enum class EptProtection : uint8_t {
  kNone,       // baseline: EPT pages in ordinary memory, hammerable
  kGuardRows,  // Siloz default: EPTs in a guard-protected row-group block
  kSecureEpt,  // TDX/SNP-style hardware integrity checks (detect, not prevent)
};

const char* EptProtectionName(EptProtection protection);

struct SilozConfig {
  // false = unmodified Linux/KVM baseline: one node per socket, no subarray
  // awareness, EPTs in ordinary memory.
  bool enabled = true;

  // Rows per subarray, passed as a boot parameter (§5.3). Non-power-of-2
  // values are handled via artificial subarray groups (§6) when
  // allow_artificial_groups is set.
  uint32_t rows_per_subarray = 1024;
  bool allow_artificial_groups = true;
  // DDR5 platforms undo mirroring/inversion at each device (§8.2), so media
  // subarray blocks equal internal blocks for ANY size: non-power-of-2
  // subarray sizes are then managed natively, without artificial rounding.
  bool uniform_internal_addressing = false;
  // Guard rows inserted at each artificial-group boundary (§6; 4 protects
  // against bit flips observed on modern server DIMMs).
  uint32_t artificial_boundary_guard_rows = 4;

  // Subarray groups per socket reserved for the host (host processes, kernel,
  // mediated pages, EPT block). The remainder become guest-reserved nodes.
  uint32_t host_groups_per_socket = 2;

  // Rows reported by the address-translation drivers as repaired to spare
  // rows in *other* subarrays (§6). Siloz removes every page with bytes in
  // such a row from allocatable memory at boot, like failing pages. The
  // column field is ignored.
  std::vector<MediaAddress> quarantined_rows;

  EptProtection ept_protection = EptProtection::kGuardRows;
  // Guard-row block geometry (§5.4): b consecutive row groups reserved in a
  // designated host subarray group; the row group at offset o holds EPTs,
  // the rest are guard rows.
  uint32_t ept_block_row_groups = 32;  // b
  uint32_t ept_row_group_offset = 12;  // o

  // Booting the same configuration twice yields identical platforms (boot is
  // deterministic), which is what lets the experiment grid share one booted
  // platform across points that compare equal here.
  bool operator==(const SilozConfig&) const = default;
};

// Memory-region classification (§5.1): a page is *unmediated* if the VM can
// access it without a VM exit; such pages must live in the VM's private
// subarray groups. Mediated/host pages live in host-reserved groups. The
// classification mirrors QEMU memory types.
enum class MemoryType : uint8_t {
  kGuestRam,        // unmediated read/write
  kGuestRom,        // unmediated reads (writes exit)
  kVirtioQueue,     // unmediated: shared rings the guest writes directly
  kMmio,            // mediated: every access exits
  kHostOnly,        // hypervisor-internal
};

bool IsUnmediated(MemoryType type);
const char* MemoryTypeName(MemoryType type);

struct VmConfig {
  std::string name;
  uint64_t memory_bytes = 0;            // guest RAM (unmediated)
  uint64_t rom_bytes = 0;               // unmediated-read ROM
  uint64_t mmio_bytes = 0;              // mediated device windows
  uint32_t socket = 0;                  // preferred physical node
  PageSize backing = PageSize::k2M;     // host backing page size (§5.4 relies on 2M)

  bool operator==(const VmConfig&) const = default;
};

}  // namespace siloz

#endif  // SILOZ_SRC_SILOZ_CONFIG_H_
