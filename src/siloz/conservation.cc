#include "src/siloz/conservation.h"

#include <sstream>

#include "src/base/fault_injector.h"
#include "src/obs/metrics.h"

namespace siloz {

ConservationSnapshot CaptureConservation(const SilozHypervisor& hv) {
  ConservationSnapshot snap;
  for (const NumaNode* node : hv.nodes().AllNodes()) {
    snap.nodes.push_back(NodeUsage{node->allocator().free_bytes(),
                                   node->allocator().total_bytes(),
                                   node->allocator().offlined_bytes()});
  }
  for (uint32_t socket = 0; socket < hv.decoder().geometry().sockets; ++socket) {
    snap.ept_pool_free.push_back(hv.ept_pool_free(socket));
  }
  snap.cgroups = hv.cgroups().size();
  snap.owned_nodes = hv.owned_node_count();
  snap.backing_entries = hv.backing_map_entries();
  snap.ept_page_entries = hv.ept_page_map_entries();
  snap.ept_pages_held = hv.ept_pages_held();
  obs::Registry& registry = obs::Registry::Global();
  snap.gauge_pool_free = registry.GetGauge("hv.ept.pool_free", obs::Domain::kSched).Value();
  snap.gauge_pages_in_use =
      registry.GetGauge("hv.ept.pages_in_use", obs::Domain::kSched).Value();
  return snap;
}

std::string DiffConservation(const ConservationSnapshot& before,
                             const ConservationSnapshot& after) {
  std::ostringstream diff;
  const auto field = [&diff](const char* name, auto was, auto now) {
    if (was != now) {
      diff << name << " " << was << " -> " << now << "; ";
    }
  };
  if (before.nodes.size() != after.nodes.size()) {
    field("node count", before.nodes.size(), after.nodes.size());
  } else {
    for (size_t id = 0; id < before.nodes.size(); ++id) {
      if (before.nodes[id] == after.nodes[id]) {
        continue;
      }
      const std::string tag = "node " + std::to_string(id) + " ";
      field((tag + "free_bytes").c_str(), before.nodes[id].free_bytes,
            after.nodes[id].free_bytes);
      field((tag + "total_bytes").c_str(), before.nodes[id].total_bytes,
            after.nodes[id].total_bytes);
      field((tag + "offlined_bytes").c_str(), before.nodes[id].offlined_bytes,
            after.nodes[id].offlined_bytes);
    }
  }
  if (before.ept_pool_free.size() != after.ept_pool_free.size()) {
    field("socket count", before.ept_pool_free.size(), after.ept_pool_free.size());
  } else {
    for (size_t socket = 0; socket < before.ept_pool_free.size(); ++socket) {
      field(("socket " + std::to_string(socket) + " ept_pool_free").c_str(),
            before.ept_pool_free[socket], after.ept_pool_free[socket]);
    }
  }
  field("cgroups", before.cgroups, after.cgroups);
  field("owned_nodes", before.owned_nodes, after.owned_nodes);
  field("backing_entries", before.backing_entries, after.backing_entries);
  field("ept_page_entries", before.ept_page_entries, after.ept_page_entries);
  field("ept_pages_held", before.ept_pages_held, after.ept_pages_held);
  field("gauge hv.ept.pool_free", before.gauge_pool_free, after.gauge_pool_free);
  field("gauge hv.ept.pages_in_use", before.gauge_pages_in_use, after.gauge_pages_in_use);
  return diff.str();
}

Result<FaultSweepReport> RunCreateVmFaultSweep(SilozHypervisor& hv, const VmConfig& vm_config,
                                               uint64_t max_points) {
  FaultSweepReport report;
  FaultInjector& injector = FaultInjector::Global();
  for (uint64_t k = 1; k <= max_points; ++k) {
    const ConservationSnapshot before = CaptureConservation(hv);
    injector.Arm(k, "alloc.");
    Result<VmId> created = hv.CreateVm(vm_config);
    const uint64_t fired = injector.faults_fired();
    injector.Disarm();
    ++report.points_probed;
    report.faults_injected += fired;
    if (created.ok()) {
      if (fired > 0) {
        ++report.creates_survived;
      }
      SILOZ_RETURN_IF_ERROR(hv.DestroyVm(*created));
      SILOZ_RETURN_IF_ERROR(hv.ReleaseVmNodes(*created));
      const std::string diff = DiffConservation(before, CaptureConservation(hv));
      if (!diff.empty()) {
        return MakeError(ErrorCode::kIntegrityViolation,
                         "create->destroy->release is not a fixed point at k=" +
                             std::to_string(k) + ": " + diff);
      }
      if (fired == 0) {
        return report;  // past the last reachable "alloc." fault point
      }
    } else {
      if (fired == 0) {
        return MakeError(ErrorCode::kFailedPrecondition,
                         "CreateVm failed without an injected fault at k=" +
                             std::to_string(k) + ": " + created.error().ToString());
      }
      ++report.creates_failed;
      const std::string diff = DiffConservation(before, CaptureConservation(hv));
      if (!diff.empty()) {
        return MakeError(ErrorCode::kIntegrityViolation,
                         "failed CreateVm leaked state at k=" + std::to_string(k) + " (" +
                             created.error().ToString() + "): " + diff);
      }
    }
  }
  return MakeError(ErrorCode::kOutOfRange,
                   "fault sweep did not terminate within " + std::to_string(max_points) +
                       " points");
}

Result<FaultSweepReport> RunMigrateVmFaultSweep(SilozHypervisor& hv, const VmConfig& vm_config,
                                                uint32_t target_socket, uint64_t max_points) {
  FaultSweepReport report;
  FaultInjector& injector = FaultInjector::Global();
  for (uint64_t k = 1; k <= max_points; ++k) {
    const ConservationSnapshot empty = CaptureConservation(hv);
    Result<VmId> created = hv.CreateVm(vm_config);
    SILOZ_RETURN_IF_ERROR(created);  // the create itself runs unfaulted
    const ConservationSnapshot placed = CaptureConservation(hv);
    injector.Arm(k, "alloc.");
    const Status migrated = hv.MigrateVm(*created, target_socket);
    const uint64_t fired = injector.faults_fired();
    injector.Disarm();
    ++report.points_probed;
    report.faults_injected += fired;
    bool past_last_point = false;
    if (migrated.ok()) {
      if (fired > 0) {
        ++report.creates_survived;
      } else {
        past_last_point = true;
      }
      SILOZ_RETURN_IF_ERROR(hv.AuditVmIsolation(*created));
    } else {
      if (fired == 0) {
        return MakeError(ErrorCode::kFailedPrecondition,
                         "MigrateVm failed without an injected fault at k=" +
                             std::to_string(k) + ": " + migrated.error().ToString());
      }
      ++report.creates_failed;
      // The VM must be exactly where it was: still placed on the source
      // socket, target-side reservations fully unwound.
      const std::string diff = DiffConservation(placed, CaptureConservation(hv));
      if (!diff.empty()) {
        return MakeError(ErrorCode::kIntegrityViolation,
                         "failed MigrateVm leaked state at k=" + std::to_string(k) + " (" +
                             migrated.error().ToString() + "): " + diff);
      }
      SILOZ_RETURN_IF_ERROR(hv.AuditVmIsolation(*created));
    }
    SILOZ_RETURN_IF_ERROR(hv.DestroyVm(*created));
    SILOZ_RETURN_IF_ERROR(hv.ReleaseVmNodes(*created));
    const std::string diff = DiffConservation(empty, CaptureConservation(hv));
    if (!diff.empty()) {
      return MakeError(ErrorCode::kIntegrityViolation,
                       "create->migrate->destroy->release is not a fixed point at k=" +
                           std::to_string(k) + ": " + diff);
    }
    if (past_last_point) {
      return report;
    }
  }
  return MakeError(ErrorCode::kOutOfRange,
                   "migrate fault sweep did not terminate within " +
                       std::to_string(max_points) + " points");
}

}  // namespace siloz
