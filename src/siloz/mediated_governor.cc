#include "src/siloz/mediated_governor.h"

#include "src/obs/metrics.h"

namespace siloz {

MediatedAccessGovernor::~MediatedAccessGovernor() {
  uint64_t admitted = 0;
  uint64_t throttled = 0;
  for (const auto& [vm, bucket] : buckets_) {
    admitted += bucket.admitted;
    throttled += bucket.throttled;
  }
  obs::Registry& registry = obs::Registry::Global();
  if (admitted > 0) {
    registry.GetCounter("hv.governor.admitted").Add(admitted);
  }
  if (throttled > 0) {
    registry.GetCounter("hv.governor.throttled").Add(throttled);
  }
}

Status MediatedAccessGovernor::Charge(VmId vm, uint64_t now_ns) {
  Bucket& bucket = buckets_[vm];
  if (now_ns >= bucket.window_start_ns + kRefreshWindowNs) {
    // New refresh window: every host row the VM could have disturbed has
    // been refreshed since; reset the budget.
    bucket.window_start_ns = now_ns - (now_ns % kRefreshWindowNs);
    bucket.used = 0;
  }
  if (bucket.used >= config_.acts_per_refresh_window) {
    ++bucket.throttled;
    return MakeError(ErrorCode::kPermissionDenied,
                     "exit-induced access budget exhausted for VM " + std::to_string(vm));
  }
  ++bucket.used;
  ++bucket.admitted;
  return Status::Ok();
}

uint64_t MediatedAccessGovernor::throttled(VmId vm) const {
  auto it = buckets_.find(vm);
  return it == buckets_.end() ? 0 : it->second.throttled;
}

uint64_t MediatedAccessGovernor::admitted(VmId vm) const {
  auto it = buckets_.find(vm);
  return it == buckets_.end() ? 0 : it->second.admitted;
}

}  // namespace siloz
