#include "src/siloz/config.h"

namespace siloz {

const char* EptProtectionName(EptProtection protection) {
  switch (protection) {
    case EptProtection::kNone:
      return "none";
    case EptProtection::kGuardRows:
      return "guard-rows";
    case EptProtection::kSecureEpt:
      return "secure-ept";
  }
  return "?";
}

bool IsUnmediated(MemoryType type) {
  switch (type) {
    case MemoryType::kGuestRam:
    case MemoryType::kGuestRom:
    case MemoryType::kVirtioQueue:
      return true;
    case MemoryType::kMmio:
    case MemoryType::kHostOnly:
      return false;
  }
  return false;
}

const char* MemoryTypeName(MemoryType type) {
  switch (type) {
    case MemoryType::kGuestRam:
      return "guest-ram";
    case MemoryType::kGuestRom:
      return "guest-rom";
    case MemoryType::kVirtioQueue:
      return "virtio-queue";
    case MemoryType::kMmio:
      return "mmio";
    case MemoryType::kHostOnly:
      return "host-only";
  }
  return "?";
}

}  // namespace siloz
