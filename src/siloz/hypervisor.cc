#include "src/siloz/hypervisor.h"

#include <algorithm>

#include "src/base/bitops.h"
#include "src/base/check.h"
#include "src/base/fault_injector.h"
#include "src/base/log.h"
#include "src/base/transaction.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace siloz {
namespace {

uint32_t OrderOf(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return kOrder4K;
    case PageSize::k2M:
      return kOrder2M;
    case PageSize::k1G:
      return kOrder1G;
  }
  return kOrder4K;
}

}  // namespace

SilozHypervisor::SilozHypervisor(const AddressDecoder& decoder, PhysMemory& memory,
                                 SilozConfig config)
    : decoder_(decoder), memory_(memory), config_(config) {}

SilozHypervisor::~SilozHypervisor() {
  // Deterministic flush point: pure event totals, independent of thread
  // count or timing (see DESIGN.md on the metrics determinism contract).
  // Zero counts are skipped; zero-ness is deterministic, so the exported
  // key set still matches across thread counts.
  MutexLock lock(mu_);
  obs::Registry& registry = obs::Registry::Global();
  const auto flush = [&registry](const char* name, uint64_t value) {
    if (value > 0) {
      registry.GetCounter(name).Add(value);
    }
  };
  flush("hv.alloc.pages", obs_counts_.alloc_pages);
  flush("hv.alloc.denied", obs_counts_.alloc_denied);
  flush("hv.vm.created", obs_counts_.vms_created);
  flush("hv.vm.destroyed", obs_counts_.vms_destroyed);
  flush("hv.vm.migrated", obs_counts_.vms_migrated);
  flush("hv.ept.pool_pages", obs_counts_.ept_pool_pages);
  flush("hv.ept.guard_pages", obs_counts_.ept_guard_pages);
  flush("hv.ept.violations", obs_counts_.ept_violations);
}

Status SilozHypervisor::Boot() {
  obs::TraceSpan span("hv.Boot");
  MutexLock lock(mu_);
  if (booted_) {
    return MakeError(ErrorCode::kFailedPrecondition, "already booted");
  }
  const DramGeometry& geometry = decoder_.geometry();
  host_node_by_socket_.assign(geometry.sockets, 0);
  ept_pool_.assign(geometry.sockets, {});
  ept_pool_ranges_.assign(geometry.sockets, {});

  if (!config_.enabled) {
    // Unmodified baseline: one node per socket covering all of its memory.
    effective_rows_per_subarray_ = geometry.rows_per_subarray;
    for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
      const uint64_t begin = socket * geometry.socket_bytes();
      NumaNode& node = nodes_.AddNode(NodeKind::kHostReserved, socket, /*first_group=*/0,
                                      {PhysRange{begin, begin + geometry.socket_bytes()}},
                                      /*has_cpus=*/true);
      host_node_by_socket_[socket] = node.id();
    }
    std::set<uint32_t> host_nodes;
    for (uint32_t node : host_node_by_socket_) {
      host_nodes.insert(node);
    }
    Result<ControlGroup*> host_cgroup = cgroups_.Create("host", host_nodes, true);
    SILOZ_RETURN_IF_ERROR(host_cgroup);
    UpdateEptGauges();
    booted_ = true;
    return Status::Ok();
  }

  // §6: round non-power-of-2 subarray sizes up to artificial groups —
  // except on DDR5-style platforms whose devices all see the same internal
  // addresses (§8.2), where any size dividing the bank is managed natively.
  effective_rows_per_subarray_ = config_.rows_per_subarray;
  if (!IsPowerOfTwo(effective_rows_per_subarray_)) {
    const bool native_ok = config_.uniform_internal_addressing &&
                           geometry.rows_per_bank % effective_rows_per_subarray_ == 0;
    if (!native_ok) {
      if (!config_.allow_artificial_groups) {
        return MakeError(ErrorCode::kUnsupported,
                         "non-power-of-2 subarray size requires artificial groups");
      }
      effective_rows_per_subarray_ =
          static_cast<uint32_t>(NextPowerOfTwo(effective_rows_per_subarray_));
      using_artificial_groups_ = true;
      SILOZ_LOG(kInfo) << "artificial subarray groups: " << config_.rows_per_subarray
                       << " rows rounded to " << effective_rows_per_subarray_;
    }
  }

  // Boot-time subarray group computation (§5.3).
  Result<SubarrayGroupMap> map = SubarrayGroupMap::Build(decoder_, effective_rows_per_subarray_);
  SILOZ_RETURN_IF_ERROR(map);
  group_map_ = std::make_unique<SubarrayGroupMap>(std::move(*map));

  const uint32_t clusters = group_map_->clusters_per_socket();
  const uint32_t groups_per_cluster = group_map_->groups_per_cluster();
  if (config_.host_groups_per_socket == 0 ||
      config_.host_groups_per_socket >= groups_per_cluster) {
    return MakeError(ErrorCode::kInvalidArgument, "host_groups_per_socket out of range");
  }

  // Provision one host-reserved node (first host_groups_per_socket groups of
  // each cluster) and one guest-reserved, memory-only node per remaining
  // group (§5.2).
  std::set<uint32_t> host_nodes;
  node_of_group_.assign(group_map_->total_groups(), 0);
  for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
    for (uint32_t cluster = 0; cluster < clusters; ++cluster) {
      const uint32_t first_group = (socket * clusters + cluster) * groups_per_cluster;
      std::vector<PhysRange> host_ranges;
      for (uint32_t g = 0; g < config_.host_groups_per_socket; ++g) {
        const auto& ranges = group_map_->RangesOf(first_group + g);
        host_ranges.insert(host_ranges.end(), ranges.begin(), ranges.end());
      }
      NumaNode& host = nodes_.AddNode(NodeKind::kHostReserved, socket, first_group,
                                      std::move(host_ranges), /*has_cpus=*/true);
      host_nodes.insert(host.id());
      for (uint32_t g = 0; g < config_.host_groups_per_socket; ++g) {
        node_of_group_[first_group + g] = host.id();
      }
      if (cluster == 0) {
        host_node_by_socket_[socket] = host.id();
      }
      for (uint32_t g = config_.host_groups_per_socket; g < groups_per_cluster; ++g) {
        NumaNode& guest = nodes_.AddNode(NodeKind::kGuestReserved, socket, first_group + g,
                                         group_map_->RangesOf(first_group + g),
                                         /*has_cpus=*/false);
        node_of_group_[first_group + g] = guest.id();
      }
    }
  }
  Result<ControlGroup*> host_cgroup = cgroups_.Create("host", host_nodes, true);
  SILOZ_RETURN_IF_ERROR(host_cgroup);

  if (!config_.quarantined_rows.empty()) {
    SILOZ_RETURN_IF_ERROR(QuarantineRepairedRows());
  }
  if (using_artificial_groups_) {
    SILOZ_RETURN_IF_ERROR(OfflineArtificialBoundaryGuards());
  }
  if (config_.ept_protection == EptProtection::kGuardRows) {
    SILOZ_RETURN_IF_ERROR(ReserveEptBlocks());
  }
  UpdateEptGauges();
  booted_ = true;
  return Status::Ok();
}

Status SilozHypervisor::QuarantineRepairedRows() {
  const DramGeometry& geometry = decoder_.geometry();
  std::set<uint64_t> pages;
  for (MediaAddress row : config_.quarantined_rows) {
    // Every 4 KiB page holding any cache line of the repaired row.
    for (uint32_t column = 0; column < geometry.row_bytes; column += kCacheLineBytes) {
      row.column = column;
      Result<uint64_t> phys = decoder_.MediaToPhys(row);
      SILOZ_RETURN_IF_ERROR(phys);
      pages.insert(AlignDown(*phys, kPage4K));
    }
  }
  for (uint64_t page : pages) {
    Result<uint32_t> group = group_map_->GroupOfPhys(page);
    SILOZ_RETURN_IF_ERROR(group);
    Result<NumaNode*> node = NodeFor(*group);
    SILOZ_RETURN_IF_ERROR(node);
    SILOZ_RETURN_IF_ERROR((*node)->allocator().OfflinePage(page));
    quarantined_bytes_ += kPage4K;
  }
  SILOZ_LOG(kInfo) << "quarantined " << config_.quarantined_rows.size() << " repaired row(s): "
                   << pages.size() << " pages offlined";
  return Status::Ok();
}

Result<PhysRange> SilozHypervisor::RowGroupExtent(uint32_t socket, uint32_t cluster,
                                                  uint32_t row) const {
  const DramGeometry& geometry = decoder_.geometry();
  const uint32_t clusters = group_map_->clusters_per_socket();
  const uint64_t row_group_bytes =
      static_cast<uint64_t>(geometry.banks_per_socket() / clusters) * geometry.row_bytes;
  const uint32_t group = (socket * clusters + cluster) * group_map_->groups_per_cluster() +
                         row / effective_rows_per_subarray_;
  for (const PhysRange& range : group_map_->RangesOf(group)) {
    for (uint64_t start = range.begin; start + row_group_bytes <= range.end;
         start += row_group_bytes) {
      Result<MediaAddress> first = decoder_.PhysToMedia(start);
      SILOZ_RETURN_IF_ERROR(first);
      if (first->row != row) {
        continue;
      }
      // Verify the block really is one row group: its last line must map to
      // the same row (true for interleaving decoders; not for linear ones).
      Result<MediaAddress> last = decoder_.PhysToMedia(start + row_group_bytes - kCacheLineBytes);
      SILOZ_RETURN_IF_ERROR(last);
      Result<MediaAddress> mid = decoder_.PhysToMedia(start + row_group_bytes / 2);
      SILOZ_RETURN_IF_ERROR(mid);
      if (last->row != row || mid->row != row) {
        return MakeError(ErrorCode::kUnsupported,
                         "decoder does not keep row groups physically contiguous");
      }
      return PhysRange{start, start + row_group_bytes};
    }
  }
  return MakeError(ErrorCode::kNotFound, "row group not found in group extents");
}

Result<uint32_t> SilozHypervisor::NodeOfGroup(uint32_t group) const {
  if (group >= node_of_group_.size()) {
    return MakeError(ErrorCode::kOutOfRange, "no group " + std::to_string(group));
  }
  return node_of_group_[group];
}

Result<NumaNode*> SilozHypervisor::NodeFor(uint32_t group) {
  if (group >= node_of_group_.size()) {
    return MakeError(ErrorCode::kOutOfRange, "no group " + std::to_string(group));
  }
  return nodes_.Get(node_of_group_[group]);
}

Status SilozHypervisor::OfflineArtificialBoundaryGuards() {
  // §6: artificial subarray boundaries do not coincide with silicon
  // isolation, so n guard rows are reserved at each boundary. The guards
  // live at *internal* rows [boundary, boundary+n); their media images
  // differ per rank (mirroring) and half-row side (inversion), so every
  // transform image must be offlined — this is the paper's "accounting for
  // mappings on different ranks and sides" that yields ~1.56% (512 rows) to
  // ~0.39% (2048 rows) of DRAM.
  const uint32_t guard_rows = config_.artificial_boundary_guard_rows;
  for (uint32_t group = 0; group < group_map_->total_groups(); ++group) {
    const uint32_t socket = group_map_->SocketOfGroup(group);
    const uint32_t cluster = group_map_->ClusterOfGroup(group);
    const uint32_t start_row = group_map_->IndexInCluster(group) * effective_rows_per_subarray_;
    std::set<uint32_t> media_rows;
    for (uint32_t r = 0; r < guard_rows; ++r) {
      const uint32_t internal = start_row + r;
      for (uint32_t rank : {0u, 1u}) {
        for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
          // Mirroring and inversion are involutions: the media row whose
          // internal image is `internal` is the transform of `internal`.
          uint32_t media = RowRemapper::ApplyInversion(internal, side);
          media = RowRemapper::ApplyMirroring(media, rank);
          media_rows.insert(media);
        }
      }
    }
    for (uint32_t media_row : media_rows) {
      // A transform image may land in a neighbouring group's row range (e.g.
      // b9 inversion with 512-row groups); offline from the owning node.
      const uint32_t owning_group =
          (socket * group_map_->clusters_per_socket() + cluster) *
              group_map_->groups_per_cluster() +
          media_row / effective_rows_per_subarray_;
      Result<NumaNode*> node = NodeFor(owning_group);
      SILOZ_RETURN_IF_ERROR(node);
      Result<PhysRange> extent = RowGroupExtent(socket, cluster, media_row);
      SILOZ_RETURN_IF_ERROR(extent);
      for (uint64_t page = extent->begin; page < extent->end; page += kPage4K) {
        SILOZ_RETURN_IF_ERROR((*node)->allocator().OfflinePage(page));
        artificial_guard_bytes_ += kPage4K;
      }
    }
  }
  return Status::Ok();
}

Status SilozHypervisor::ReserveEptBlocks() {
  // §5.4: a contiguous block of b row groups in the first host group of each
  // socket; the row group at offset o holds EPT pages, the other b-1 are
  // guard rows (offlined).
  const uint32_t b = config_.ept_block_row_groups;
  const uint32_t o = config_.ept_row_group_offset;
  if (o >= b) {
    return MakeError(ErrorCode::kInvalidArgument, "ept_row_group_offset must be < block size");
  }
  const uint32_t skip = using_artificial_groups_ ? config_.artificial_boundary_guard_rows : 0;
  for (uint32_t socket = 0; socket < decoder_.geometry().sockets; ++socket) {
    Result<NumaNode*> host = nodes_.Get(host_node_by_socket_[socket]);
    SILOZ_RETURN_IF_ERROR(host);
    for (uint32_t r = 0; r < b; ++r) {
      Result<PhysRange> extent = RowGroupExtent(socket, /*cluster=*/0, skip + r);
      SILOZ_RETURN_IF_ERROR(extent);
      if (r == o) {
        // EPT row group: pull its pages out of general allocation and seed
        // the per-socket EPT pool.
        for (uint64_t page = extent->begin; page < extent->end; page += kPage4K) {
          SILOZ_RETURN_IF_ERROR((*host)->allocator().AllocateAt(page, kOrder4K));
          ept_pool_[socket].push_back(page);
          ++obs_counts_.ept_pool_pages;
        }
        ept_pool_ranges_[socket].push_back(*extent);
      } else {
        for (uint64_t page = extent->begin; page < extent->end; page += kPage4K) {
          SILOZ_RETURN_IF_ERROR((*host)->allocator().OfflinePage(page));
          ++obs_counts_.ept_guard_pages;
        }
      }
      ept_reserved_bytes_ += extent->size();
    }
  }
  return Status::Ok();
}

Result<uint64_t> SilozHypervisor::AllocatePages(const ControlGroup& group, uint32_t node_id,
                                                uint32_t order, bool unmediated) {
  MutexLock lock(mu_);
  if (!booted_) {
    return MakeError(ErrorCode::kFailedPrecondition, "not booted");
  }
  Result<NumaNode*> node = nodes_.Get(node_id);
  SILOZ_RETURN_IF_ERROR(node);
  if ((*node)->kind() == NodeKind::kGuestReserved) {
    // §5.3: guest-reserved nodes serve only UNMEDIATED requests from
    // KVM-privileged processes whose cgroup includes the node.
    if (!unmediated) {
      ++obs_counts_.alloc_denied;
      return MakeError(ErrorCode::kPermissionDenied,
                       "mediated allocation from guest-reserved node " + std::to_string(node_id));
    }
    if (!group.MayAllocateFrom(node_id)) {
      ++obs_counts_.alloc_denied;
      return MakeError(ErrorCode::kPermissionDenied,
                       "cgroup '" + group.name() + "' lacks node " + std::to_string(node_id));
    }
    if (!group.kvm_privileged()) {
      ++obs_counts_.alloc_denied;
      return MakeError(ErrorCode::kPermissionDenied,
                       "cgroup '" + group.name() + "' lacks KVM privileges");
    }
  }
  Result<uint64_t> page = (*node)->allocator().Allocate(order);
  if (page.ok()) {
    ++obs_counts_.alloc_pages;
  }
  return page;
}

Status SilozHypervisor::FreePages(uint32_t node_id, uint64_t phys, uint32_t order) {
  MutexLock lock(mu_);
  return FreePagesLocked(node_id, phys, order);
}

Status SilozHypervisor::FreePagesLocked(uint32_t node_id, uint64_t phys, uint32_t order) {
  Result<NumaNode*> node = nodes_.Get(node_id);
  SILOZ_RETURN_IF_ERROR(node);
  return (*node)->allocator().Free(phys, order);
}

Result<uint64_t> SilozHypervisor::AllocateContiguous(NumaNode& node, uint64_t bytes,
                                                     uint32_t order) {
  SILOZ_FAULT_POINT("alloc.hv.contiguous");
  const uint64_t block = OrderBytes(order);
  SILOZ_CHECK_EQ(bytes % block, 0u);
  for (const PhysRange& range : node.ranges()) {
    uint64_t start = AlignUp(range.begin, block);
    while (start + bytes <= range.end) {
      uint64_t cursor = start;
      bool complete = true;
      for (; cursor < start + bytes; cursor += block) {
        if (!node.allocator().AllocateAt(cursor, order).ok()) {
          complete = false;
          break;
        }
      }
      if (complete) {
        return start;
      }
      // Roll back the partial run and restart past the obstruction.
      for (uint64_t undo = start; undo < cursor; undo += block) {
        SILOZ_CHECK(node.allocator().Free(undo, order).ok());
      }
      start = cursor + block;
    }
  }
  return MakeError(ErrorCode::kNoMemory,
                   "no contiguous run of " + std::to_string(bytes) + " bytes in node " +
                       std::to_string(node.id()));
}

Result<std::vector<PhysRange>> SilozHypervisor::AllocateRuns(NumaNode& node, uint64_t bytes,
                                                             uint32_t order) {
  SILOZ_FAULT_POINT("alloc.hv.runs");
  const uint64_t block = OrderBytes(order);
  SILOZ_CHECK_EQ(bytes % block, 0u);
  std::vector<PhysRange> runs;
  uint64_t remaining = bytes;
  for (const PhysRange& range : node.ranges()) {
    for (uint64_t cursor = AlignUp(range.begin, block);
         remaining > 0 && cursor + block <= range.end; cursor += block) {
      if (!node.allocator().AllocateAt(cursor, order).ok()) {
        continue;  // offlined or already-used block; skip past it
      }
      remaining -= block;
      if (!runs.empty() && runs.back().end == cursor) {
        runs.back().end = cursor + block;
      } else {
        runs.push_back(PhysRange{cursor, cursor + block});
      }
    }
    if (remaining == 0) {
      break;
    }
  }
  if (remaining != 0) {
    for (const PhysRange& run : runs) {
      for (uint64_t p = run.begin; p < run.end; p += block) {
        SILOZ_CHECK(node.allocator().Free(p, order).ok());
      }
    }
    return MakeError(ErrorCode::kNoMemory,
                     "node " + std::to_string(node.id()) + " lacks " + std::to_string(bytes) +
                         " free bytes at order " + std::to_string(order));
  }
  return runs;
}

std::vector<uint32_t> SilozHypervisor::AvailableGuestNodes(uint32_t socket) const {
  MutexLock lock(mu_);
  return AvailableGuestNodesLocked(socket);
}

std::vector<uint32_t> SilozHypervisor::AvailableGuestNodesLocked(uint32_t socket) const {
  std::vector<uint32_t> available;
  for (const auto& node : const_cast<NodeRegistry&>(nodes_).NodesOnSocket(socket)) {
    if (node->kind() == NodeKind::kGuestReserved && node_owner_.count(node->id()) == 0) {
      available.push_back(node->id());
    }
  }
  return available;
}

Result<uint32_t> SilozHypervisor::HostNode(uint32_t socket) const {
  if (socket >= host_node_by_socket_.size()) {
    return MakeError(ErrorCode::kOutOfRange, "no socket " + std::to_string(socket));
  }
  return host_node_by_socket_[socket];
}

EptPageAllocator SilozHypervisor::MakeEptAllocator(uint32_t socket,
                                                   std::vector<uint64_t>* pages_out) {
  if (config_.enabled && config_.ept_protection == EptProtection::kGuardRows) {
    // The GFP_EPT path (§5.4): pages come from the protected row group.
    return [this, socket, pages_out]() -> Result<uint64_t> {
      mu_.AssertHeld();  // runs inside CreateVm/AssignPassthroughDevice
      if (ept_pool_[socket].empty()) {
        return MakeError(ErrorCode::kNoMemory, "EPT pool exhausted");
      }
      const uint64_t page = ept_pool_[socket].back();
      ept_pool_[socket].pop_back();
      pages_out->push_back(page);
      ++ept_pages_held_;
      UpdateEptGauges();
      return page;
    };
  }
  // Baseline / secure-EPT: ordinary host-node memory.
  const uint32_t host_node = host_node_by_socket_[socket];
  return [this, host_node, pages_out]() -> Result<uint64_t> {
    mu_.AssertHeld();  // runs inside CreateVm/AssignPassthroughDevice
    Result<NumaNode*> node = nodes_.Get(host_node);
    SILOZ_RETURN_IF_ERROR(node);
    Result<uint64_t> page = (*node)->allocator().Allocate(kOrder4K);
    SILOZ_RETURN_IF_ERROR(page);
    pages_out->push_back(*page);
    ++ept_pages_held_;
    UpdateEptGauges();
    return *page;
  };
}

Status SilozHypervisor::ReturnEptPage(uint32_t socket, uint64_t page) {
  if (config_.enabled && config_.ept_protection == EptProtection::kGuardRows) {
    ept_pool_[socket].push_back(page);
  } else {
    SILOZ_RETURN_IF_ERROR(FreePagesLocked(host_node_by_socket_[socket], page, kOrder4K));
  }
  SILOZ_CHECK_GT(ept_pages_held_, 0u);
  --ept_pages_held_;
  UpdateEptGauges();
  return Status::Ok();
}

Status SilozHypervisor::FreeBackingBlocks(Backing& backing) {
  Result<NumaNode*> node = nodes_.Get(backing.node);
  SILOZ_RETURN_IF_ERROR(node);
  const uint64_t block = OrderBytes(backing.order);
  while (backing.bytes > 0) {
    SILOZ_RETURN_IF_ERROR((*node)->allocator().Free(backing.phys, backing.order));
    backing.phys += block;
    backing.bytes -= block;
  }
  return Status::Ok();
}

void SilozHypervisor::UpdateEptGauges() {
  // Scheduler domain, not model: concurrent trials each run a hypervisor and
  // these last-writer-wins levels would differ across thread counts.
  int64_t pool_free = 0;
  for (const auto& pool : ept_pool_) {
    pool_free += static_cast<int64_t>(pool.size());
  }
  obs::Registry& registry = obs::Registry::Global();
  registry.GetGauge("hv.ept.pool_free", obs::Domain::kSched).Set(pool_free);
  registry.GetGauge("hv.ept.pages_in_use", obs::Domain::kSched)
      .Set(static_cast<int64_t>(ept_pages_held_));
}

Result<VmId> SilozHypervisor::CreateVm(const VmConfig& vm_config) {
  obs::TraceSpan span("hv.CreateVm");
  MutexLock lock(mu_);
  return CreateVmLocked(vm_config);
}

Result<VmId> SilozHypervisor::CreateVmLocked(const VmConfig& vm_config) {
  if (!booted_) {
    return MakeError(ErrorCode::kFailedPrecondition, "not booted");
  }
  const uint64_t backing_bytes = OrderBytes(OrderOf(vm_config.backing));
  if (vm_config.memory_bytes == 0 || vm_config.memory_bytes % backing_bytes != 0 ||
      vm_config.rom_bytes % backing_bytes != 0) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "VM memory/rom must be nonzero multiples of the backing page size");
  }
  if (vm_config.socket >= decoder_.geometry().sockets) {
    return MakeError(ErrorCode::kOutOfRange, "no such socket");
  }
  const uint64_t unmediated_bytes = vm_config.memory_bytes + vm_config.rom_bytes;

  const VmId id = next_vm_id_++;
  const std::string cgroup_name = config_.enabled ? ("vm-" + vm_config.name) : "host";
  auto vm = std::make_unique<Vm>(id, vm_config, cgroup_name);

  // Every reservation below registers its undo the moment it succeeds; any
  // early return rolls the whole set back (newest first) via the
  // transaction's destructor, and only Commit() at the end makes it stick.
  std::vector<Backing> backing_log;
  ReservationTransaction txn;
  auto log_backing = [&](const Backing& run) {
    backing_log.push_back(run);
    txn.OnRollback([this, run] {
      mu_.AssertHeld();  // txn unwinds inside CreateVmLocked
      Backing remaining = run;
      SILOZ_CHECK(FreeBackingBlocks(remaining).ok())
          << "rollback failed to free backing at " << run.phys;
    });
  };

  // --- Reserve nodes and allocate unmediated backing ---
  uint64_t gpa_cursor = 0;
  // Adds unmediated regions for one contiguous host run, splitting at the
  // RAM/ROM boundary in guest-physical space.
  auto add_unmediated_regions = [&](uint64_t hpa, uint64_t bytes) {
    uint64_t remaining = bytes;
    while (remaining > 0) {
      const bool is_ram = gpa_cursor < vm_config.memory_bytes;
      const uint64_t limit = is_ram ? vm_config.memory_bytes - gpa_cursor : remaining;
      const uint64_t piece = std::min(remaining, limit);
      vm->AddRegion(VmRegion{is_ram ? MemoryType::kGuestRam : MemoryType::kGuestRom, gpa_cursor,
                             hpa, piece, vm_config.backing});
      gpa_cursor += piece;
      hpa += piece;
      remaining -= piece;
    }
  };

  if (config_.enabled) {
    // Whole subarray groups, same socket (§5.2-§5.3). Select enough free
    // guest nodes by their actual free capacity (guard offlining can shave a
    // few rows off a group).
    const std::vector<uint32_t> available = AvailableGuestNodesLocked(vm_config.socket);
    std::vector<uint32_t> selected;
    uint64_t capacity = 0;
    for (uint32_t node_id : available) {
      if (capacity >= unmediated_bytes) {
        break;
      }
      NumaNode& node = *nodes_.Get(node_id).value();
      selected.push_back(node_id);
      capacity += AlignDown(node.allocator().free_bytes(), backing_bytes);
    }
    if (capacity < unmediated_bytes) {
      return MakeError(ErrorCode::kNoMemory,
                       "socket " + std::to_string(vm_config.socket) + " has only " +
                           std::to_string(capacity) + " free guest-node bytes of " +
                           std::to_string(unmediated_bytes) + " needed");
    }
    std::set<uint32_t> mems(selected.begin(), selected.end());
    Result<ControlGroup*> cgroup = cgroups_.Create(cgroup_name, mems, /*kvm_privileged=*/true);
    SILOZ_RETURN_IF_ERROR(cgroup);
    txn.OnRollback([this, cgroup_name] {
      SILOZ_CHECK(cgroups_.Destroy(cgroup_name).ok())
          << "rollback failed to destroy cgroup " << cgroup_name;
    });
    uint64_t remaining = unmediated_bytes;
    for (uint32_t node_id : selected) {
      node_owner_[node_id] = cgroup_name;
      txn.OnRollback([this, node_id] {
        mu_.AssertHeld();
        node_owner_.erase(node_id);
      });
      NumaNode& node = *nodes_.Get(node_id).value();
      vm->AddGuestNode(node_id, node.first_group());
      const uint64_t chunk =
          std::min(remaining, AlignDown(node.allocator().free_bytes(), backing_bytes));
      if (chunk == 0) {
        continue;
      }
      Result<std::vector<PhysRange>> runs =
          AllocateRuns(node, chunk, OrderOf(vm_config.backing));
      SILOZ_RETURN_IF_ERROR(runs);
      for (const PhysRange& run : *runs) {
        log_backing(Backing{node_id, run.begin, run.size(), OrderOf(vm_config.backing)});
        add_unmediated_regions(run.begin, run.size());
      }
      remaining -= chunk;
    }
    SILOZ_CHECK_EQ(remaining, 0u);
  } else {
    // Baseline: contiguous run from the socket's single node.
    NumaNode& node = *nodes_.Get(host_node_by_socket_[vm_config.socket]).value();
    Result<uint64_t> start =
        AllocateContiguous(node, unmediated_bytes, OrderOf(vm_config.backing));
    SILOZ_RETURN_IF_ERROR(start);
    log_backing(Backing{node.id(), *start, unmediated_bytes, OrderOf(vm_config.backing)});
    add_unmediated_regions(*start, unmediated_bytes);
  }

  // --- Mediated MMIO window: host memory, never mapped in the EPT ---
  if (vm_config.mmio_bytes > 0) {
    NumaNode& host = *nodes_.Get(host_node_by_socket_[vm_config.socket]).value();
    const uint64_t mmio_bytes = AlignUp(vm_config.mmio_bytes, kPage4K);
    Result<uint64_t> mmio = AllocateContiguous(host, mmio_bytes, kOrder4K);
    SILOZ_RETURN_IF_ERROR(mmio);
    log_backing(Backing{host.id(), *mmio, mmio_bytes, kOrder4K});
    vm->AddRegion(VmRegion{MemoryType::kMmio, gpa_cursor, *mmio, mmio_bytes, PageSize::k4K});
  }

  // --- Build the EPT (§5.4) ---
  // Creation can fail mid-way (e.g. the per-socket protected pool is
  // exhausted: a real capacity limit — one row group per socket bounds the
  // EPT working set, §5.4). The map entry is itself a logged reservation:
  // pages drawn through the allocator land in it, and the undo returns them
  // and erases the entry, so no phantom entry survives a failed create. The
  // entry (not a local) also gives the allocator a stable vector to fill.
  // siloz-lint: allow(map-bracket-probe): the default-insert IS the logged
  // reservation — the rollback registered next erases it, so no phantom
  // entry survives a failed create.
  std::vector<uint64_t>& ept_pages = vm_ept_pages_[id];
  txn.OnRollback([this, id, socket = vm_config.socket] {
    mu_.AssertHeld();  // txn unwinds inside CreateVmLocked
    auto pages_it = vm_ept_pages_.find(id);
    SILOZ_CHECK(pages_it != vm_ept_pages_.end());
    while (!pages_it->second.empty()) {
      SILOZ_CHECK(ReturnEptPage(socket, pages_it->second.back()).ok())
          << "rollback failed to return EPT page";
      pages_it->second.pop_back();
    }
    vm_ept_pages_.erase(pages_it);
  });
  Result<std::unique_ptr<ExtendedPageTable>> ept = ExtendedPageTable::Create(
      memory_, MakeEptAllocator(vm_config.socket, &ept_pages),
      /*secure=*/config_.ept_protection == EptProtection::kSecureEpt);
  SILOZ_RETURN_IF_ERROR(ept);
  for (const VmRegion& region : vm->regions()) {
    if (!IsUnmediated(region.type)) {
      continue;  // mediated accesses exit; no EPT mapping
    }
    const uint64_t step = OrderBytes(OrderOf(region.page_size));
    for (uint64_t offset = 0; offset < region.bytes; offset += step) {
      SILOZ_RETURN_IF_ERROR((*ept)->Map(region.gpa + offset, region.hpa + offset,
                                        region.page_size));
    }
  }
  vm->SetEpt(std::move(*ept));

  // --- Commit: everything reserved; publish and disarm the rollback ---
  txn.Commit();
  vm_backing_[id] = std::move(backing_log);
  Vm* raw = vm.get();
  vms_[id] = std::move(vm);
  ++obs_counts_.vms_created;
  SILOZ_LOG(kInfo) << "created VM " << raw->config().name << " (" << id << ") with "
                   << raw->guest_nodes().size() << " guest node(s)";
  return id;
}

Result<Vm*> SilozHypervisor::GetVm(VmId id) {
  MutexLock lock(mu_);
  return GetVmLocked(id);
}

Result<Vm*> SilozHypervisor::GetVmLocked(VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return MakeError(ErrorCode::kNotFound, "no VM " + std::to_string(id));
  }
  return it->second.get();
}

Status SilozHypervisor::DestroyVm(VmId id) {
  MutexLock lock(mu_);
  return DestroyVmLocked(id);
}

Status SilozHypervisor::DestroyVmLocked(VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return MakeError(ErrorCode::kNotFound, "no VM " + std::to_string(id));
  }
  Vm& vm = *it->second;
  if (destroyed_vms_.count(id) != 0) {
    return Status::Ok();  // idempotent: already torn down
  }
  // Free backing memory to its nodes (§5.3: pages return to the nodes' free
  // pools; the node reservation itself survives until ReleaseVmNodes).
  // Progress is recorded as it happens — FreeBackingBlocks shrinks the entry
  // in place and fully-freed entries are popped — so a mid-teardown failure
  // leaves the log describing exactly what is still allocated, and a retry
  // resumes there instead of double-freeing.
  auto backing_it = vm_backing_.find(id);
  if (backing_it != vm_backing_.end()) {
    std::vector<Backing>& log = backing_it->second;
    while (!log.empty()) {
      SILOZ_RETURN_IF_ERROR(FreeBackingBlocks(log.back()));
      log.pop_back();
    }
    vm_backing_.erase(backing_it);
  }
  // EPT pages: back to the pool (guard mode) or the host node, popped one by
  // one for the same resumability.
  const uint32_t socket = vm.config().socket;
  auto pages_it = vm_ept_pages_.find(id);
  if (pages_it != vm_ept_pages_.end()) {
    std::vector<uint64_t>& pages = pages_it->second;
    while (!pages.empty()) {
      SILOZ_RETURN_IF_ERROR(ReturnEptPage(socket, pages.back()));
      pages.pop_back();
    }
    vm_ept_pages_.erase(pages_it);
  }
  destroyed_vms_.insert(id);
  ++obs_counts_.vms_destroyed;
  return Status::Ok();
}

Status SilozHypervisor::ReleaseVmNodes(VmId id) {
  MutexLock lock(mu_);
  return ReleaseVmNodesLocked(id);
}

Status SilozHypervisor::ReleaseVmNodesLocked(VmId id) {
  if (destroyed_vms_.count(id) == 0) {
    return MakeError(ErrorCode::kFailedPrecondition,
                     "VM " + std::to_string(id) + " must be destroyed first");
  }
  auto it = vms_.find(id);
  SILOZ_CHECK(it != vms_.end());
  const std::string cgroup_name = it->second->cgroup_name();
  for (uint32_t node : it->second->guest_nodes()) {
    node_owner_.erase(node);
  }
  if (cgroup_name != "host") {
    SILOZ_RETURN_IF_ERROR(cgroups_.Destroy(cgroup_name));
  }
  vms_.erase(it);
  destroyed_vms_.erase(id);
  return Status::Ok();
}

Status SilozHypervisor::MigrateVm(VmId id, uint32_t target_socket) {
  obs::TraceSpan span("hv.MigrateVm");
  MutexLock lock(mu_);
  return MigrateVmLocked(id, target_socket);
}

Status SilozHypervisor::MigrateVmLocked(VmId id, uint32_t target_socket) {
  if (!booted_) {
    return MakeError(ErrorCode::kFailedPrecondition, "not booted");
  }
  if (!config_.enabled) {
    return MakeError(ErrorCode::kUnsupported,
                     "baseline kernel has no subarray-group placement to migrate");
  }
  auto it = vms_.find(id);
  if (it == vms_.end() || destroyed_vms_.count(id) != 0) {
    return MakeError(ErrorCode::kNotFound, "no live VM " + std::to_string(id));
  }
  Vm& vm = *it->second;
  const VmConfig& vm_config = vm.config();
  if (target_socket >= decoder_.geometry().sockets) {
    return MakeError(ErrorCode::kOutOfRange, "no such socket");
  }
  if (target_socket == vm_config.socket) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "VM " + std::to_string(id) + " is already on socket " +
                         std::to_string(target_socket));
  }
  for (const auto& [device_id, device] : devices_) {
    if (device.vm == id) {
      return MakeError(ErrorCode::kFailedPrecondition,
                       "VM has passthrough device " + std::to_string(device_id) +
                           "; its IOMMU pins the source placement");
    }
  }
  SILOZ_FAULT_POINT("alloc.hv.migrate");

  const uint64_t backing_bytes = OrderBytes(OrderOf(vm_config.backing));
  const uint64_t unmediated_bytes = vm_config.memory_bytes + vm_config.rom_bytes;
  const std::string& cgroup_name = vm.cgroup_name();

  // Build the target placement exactly as CreateVmLocked does, but into local
  // staging: the VM keeps its source placement until every target reservation
  // has succeeded. Each reservation arms an undo the moment it lands, so any
  // failure below unwinds the target half and leaves the VM untouched.
  std::vector<Backing> new_backing;
  std::vector<VmRegion> new_regions;
  std::vector<std::pair<uint32_t, uint32_t>> new_nodes;  // node id, first group
  // Declared before txn: the EPT undo below captures it by reference, and an
  // uncommitted txn unwinds in its destructor — which runs before the
  // destructor of anything declared after it.
  std::vector<uint64_t> old_ept_pages;
  ReservationTransaction txn;
  auto log_backing = [&](const Backing& run) {
    new_backing.push_back(run);
    txn.OnRollback([this, run] {
      mu_.AssertHeld();  // txn unwinds inside MigrateVmLocked
      Backing remaining = run;
      SILOZ_CHECK(FreeBackingBlocks(remaining).ok())
          << "rollback failed to free backing at " << run.phys;
    });
  };
  uint64_t gpa_cursor = 0;
  // The target regions replay the guest-physical layout CreateVmLocked built:
  // RAM then ROM across the unmediated runs, MMIO after. Same split logic,
  // staged into new_regions instead of the live VM.
  auto add_unmediated_regions = [&](uint64_t hpa, uint64_t bytes) {
    uint64_t remaining = bytes;
    while (remaining > 0) {
      const bool is_ram = gpa_cursor < vm_config.memory_bytes;
      const uint64_t limit = is_ram ? vm_config.memory_bytes - gpa_cursor : remaining;
      const uint64_t piece = std::min(remaining, limit);
      new_regions.push_back(VmRegion{is_ram ? MemoryType::kGuestRam : MemoryType::kGuestRom,
                                     gpa_cursor, hpa, piece, vm_config.backing});
      gpa_cursor += piece;
      hpa += piece;
      remaining -= piece;
    }
  };

  const std::vector<uint32_t> available = AvailableGuestNodesLocked(target_socket);
  std::vector<uint32_t> selected;
  uint64_t capacity = 0;
  for (uint32_t node_id : available) {
    if (capacity >= unmediated_bytes) {
      break;
    }
    NumaNode& node = *nodes_.Get(node_id).value();
    selected.push_back(node_id);
    capacity += AlignDown(node.allocator().free_bytes(), backing_bytes);
  }
  if (capacity < unmediated_bytes) {
    return MakeError(ErrorCode::kNoMemory,
                     "target socket " + std::to_string(target_socket) + " has only " +
                         std::to_string(capacity) + " free guest-node bytes of " +
                         std::to_string(unmediated_bytes) + " needed");
  }
  uint64_t remaining = unmediated_bytes;
  for (uint32_t node_id : selected) {
    node_owner_[node_id] = cgroup_name;
    txn.OnRollback([this, node_id] {
      mu_.AssertHeld();
      node_owner_.erase(node_id);
    });
    NumaNode& node = *nodes_.Get(node_id).value();
    new_nodes.emplace_back(node_id, node.first_group());
    const uint64_t chunk =
        std::min(remaining, AlignDown(node.allocator().free_bytes(), backing_bytes));
    if (chunk == 0) {
      continue;
    }
    Result<std::vector<PhysRange>> runs = AllocateRuns(node, chunk, OrderOf(vm_config.backing));
    SILOZ_RETURN_IF_ERROR(runs);
    for (const PhysRange& run : *runs) {
      log_backing(Backing{node_id, run.begin, run.size(), OrderOf(vm_config.backing)});
      add_unmediated_regions(run.begin, run.size());
    }
    remaining -= chunk;
  }
  SILOZ_CHECK_EQ(remaining, 0u);

  if (vm_config.mmio_bytes > 0) {
    NumaNode& host = *nodes_.Get(host_node_by_socket_[target_socket]).value();
    const uint64_t mmio_bytes = AlignUp(vm_config.mmio_bytes, kPage4K);
    Result<uint64_t> mmio = AllocateContiguous(host, mmio_bytes, kOrder4K);
    SILOZ_RETURN_IF_ERROR(mmio);
    log_backing(Backing{host.id(), *mmio, mmio_bytes, kOrder4K});
    new_regions.push_back(
        VmRegion{MemoryType::kMmio, gpa_cursor, *mmio, mmio_bytes, PageSize::k4K});
  }

  // --- New EPT from the *target* socket's protected pool ---
  // The EPT object keeps its page allocator for life, so the vector the
  // allocator fills must outlive this function: stash the source pages in a
  // local and reuse the VM's stable map node for the target pages — the same
  // lifetime contract CreateVmLocked relies on. The undo returns the drawn
  // target pages and restores the source set.
  auto pages_it = vm_ept_pages_.find(id);
  SILOZ_CHECK(pages_it != vm_ept_pages_.end());
  old_ept_pages = std::move(pages_it->second);
  pages_it->second.clear();
  txn.OnRollback([this, id, target_socket, &old_ept_pages] {
    mu_.AssertHeld();  // txn unwinds inside MigrateVmLocked
    auto entry = vm_ept_pages_.find(id);
    SILOZ_CHECK(entry != vm_ept_pages_.end());
    while (!entry->second.empty()) {
      SILOZ_CHECK(ReturnEptPage(target_socket, entry->second.back()).ok())
          << "rollback failed to return EPT page";
      entry->second.pop_back();
    }
    entry->second = std::move(old_ept_pages);
  });
  Result<std::unique_ptr<ExtendedPageTable>> new_ept = ExtendedPageTable::Create(
      memory_, MakeEptAllocator(target_socket, &pages_it->second),
      /*secure=*/config_.ept_protection == EptProtection::kSecureEpt);
  SILOZ_RETURN_IF_ERROR(new_ept);
  for (const VmRegion& region : new_regions) {
    if (!IsUnmediated(region.type)) {
      continue;
    }
    const uint64_t step = OrderBytes(OrderOf(region.page_size));
    for (uint64_t offset = 0; offset < region.bytes; offset += step) {
      SILOZ_RETURN_IF_ERROR(
          (*new_ept)->Map(region.gpa + offset, region.hpa + offset, region.page_size));
    }
  }

  // --- Copy the guest image, matched by guest-physical address ---
  // Both region lists are GPA-ascending over the same span by construction
  // (the cursor above replays creation), so a single forward walk pairs them.
  // Infallible, and writes only into the still-uncommitted target backing, so
  // it runs last before the commit point.
  {
    size_t ni = 0;
    for (const VmRegion& old_region : vm.regions()) {
      uint64_t gpa = old_region.gpa;
      const uint64_t end = old_region.gpa + old_region.bytes;
      while (gpa < end) {
        while (ni < new_regions.size() &&
               new_regions[ni].gpa + new_regions[ni].bytes <= gpa) {
          ++ni;
        }
        SILOZ_CHECK_LT(ni, new_regions.size());
        const VmRegion& target = new_regions[ni];
        SILOZ_CHECK_LE(target.gpa, gpa);
        const uint64_t chunk = std::min(end, target.gpa + target.bytes) - gpa;
        memory_.CopyPhys(target.hpa + (gpa - target.gpa),
                         old_region.hpa + (gpa - old_region.gpa), chunk);
        gpa += chunk;
      }
    }
  }

  // --- Commit: target fully reserved and populated; flip the placement ---
  txn.Commit();
  const uint32_t source_socket = vm_config.socket;
  // Source-side frees cannot fail short of bookkeeping corruption, so they
  // are invariant-CHECKed like rollback frees (the conservation sweeps arm
  // "alloc." points only; there is no partial-commit state to resume from).
  auto backing_it = vm_backing_.find(id);
  SILOZ_CHECK(backing_it != vm_backing_.end());
  for (Backing& run : backing_it->second) {
    SILOZ_CHECK(FreeBackingBlocks(run).ok()) << "migration failed to free source backing";
  }
  backing_it->second = std::move(new_backing);
  while (!old_ept_pages.empty()) {
    SILOZ_CHECK(ReturnEptPage(source_socket, old_ept_pages.back()).ok())
        << "migration failed to return source EPT page";
    old_ept_pages.pop_back();
  }
  for (uint32_t node : vm.guest_nodes()) {
    node_owner_.erase(node);
  }
  vm.ResetPlacement(target_socket);
  std::set<uint32_t> mems;
  for (const auto& [node_id, first_group] : new_nodes) {
    vm.AddGuestNode(node_id, first_group);
    mems.insert(node_id);
  }
  for (const VmRegion& region : new_regions) {
    vm.AddRegion(region);
  }
  vm.SetEpt(std::move(*new_ept));
  Result<ControlGroup*> cgroup = cgroups_.Get(cgroup_name);
  SILOZ_CHECK(cgroup.ok()) << "VM cgroup vanished mid-migration";
  (*cgroup)->SetMemsAllowed(mems);
  ++obs_counts_.vms_migrated;

  // The committed placement must still prove isolation on the target groups
  // before the caller trusts it.
  SILOZ_RETURN_IF_ERROR(AuditVmIsolationLocked(id));
  SILOZ_LOG(kInfo) << "migrated VM " << vm.config().name << " (" << id << ") socket "
                   << source_socket << " -> " << target_socket;
  return Status::Ok();
}

Status SilozHypervisor::AuditVmIsolation(VmId id) const {
  MutexLock lock(mu_);
  return AuditVmIsolationLocked(id);
}

Status SilozHypervisor::AuditVmIsolationLocked(VmId id) const {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return MakeError(ErrorCode::kNotFound, "no VM " + std::to_string(id));
  }
  const Vm& vm = *it->second;
  const ExtendedPageTable* ept = vm.ept();
  SILOZ_CHECK(ept != nullptr);

  for (const VmRegion& region : vm.regions()) {
    if (!IsUnmediated(region.type)) {
      continue;
    }
    const uint64_t step = OrderBytes(OrderOf(region.page_size));
    for (uint64_t offset = 0; offset < region.bytes; offset += step) {
      Result<uint64_t> hpa = ept->Translate(region.gpa + offset);
      SILOZ_RETURN_IF_ERROR(hpa);  // secure-EPT integrity failures surface here
      if (*hpa != region.hpa + offset) {
        ++obs_counts_.ept_violations;
        return MakeError(ErrorCode::kIntegrityViolation,
                         "EPT maps GPA " + std::to_string(region.gpa + offset) + " to HPA " +
                             std::to_string(*hpa) + ", expected " +
                             std::to_string(region.hpa + offset) +
                             " — subarray group escape");
      }
    }
  }
  // Guard-row mode: every EPT table page must still live in the protected
  // row group.
  if (config_.enabled && config_.ept_protection == EptProtection::kGuardRows) {
    const auto& pool_ranges = ept_pool_ranges_[vm.config().socket];
    for (uint64_t page : ept->table_pages()) {
      bool inside = false;
      for (const PhysRange& range : pool_ranges) {
        inside |= range.Contains(page);
      }
      if (!inside) {
        ++obs_counts_.ept_violations;
        return MakeError(ErrorCode::kIntegrityViolation,
                         "EPT table page outside the protected row group");
      }
    }
  }
  return Status::Ok();
}

Result<uint32_t> SilozHypervisor::AssignPassthroughDevice(VmId vm_id, const std::string& name) {
  MutexLock lock(mu_);
  Result<Vm*> vm = GetVmLocked(vm_id);
  SILOZ_RETURN_IF_ERROR(vm);
  if (destroyed_vms_.count(vm_id) != 0) {
    return MakeError(ErrorCode::kFailedPrecondition, "VM is destroyed");
  }
  const uint32_t id = next_device_id_++;
  PassthroughDevice device;
  device.name = name;
  device.vm = vm_id;
  // A failed assignment (pool exhaustion mid-Map, say) must return every
  // table page already drawn; before this undo the pages leaked with the
  // discarded device struct.
  ReservationTransaction txn;
  const uint32_t socket = (*vm)->config().socket;
  txn.OnRollback([this, socket, &device] {
    mu_.AssertHeld();  // txn unwinds inside AssignPassthroughDevice
    while (!device.table_pages.empty()) {
      SILOZ_CHECK(ReturnEptPage(socket, device.table_pages.back()).ok())
          << "rollback failed to return IOMMU table page";
      device.table_pages.pop_back();
    }
  });
  // IOMMU table pages come from the same protected path as EPT pages
  // (requirement (2) of §5.1).
  Result<std::unique_ptr<ExtendedPageTable>> iommu = ExtendedPageTable::Create(
      memory_, MakeEptAllocator(socket, &device.table_pages),
      /*secure=*/config_.ept_protection == EptProtection::kSecureEpt);
  SILOZ_RETURN_IF_ERROR(iommu);
  device.iommu = std::move(*iommu);
  // IOVA space mirrors the guest-physical layout of unmediated regions
  // (requirement (1): the device can only reach the guest's groups).
  for (const VmRegion& region : (*vm)->regions()) {
    if (!IsUnmediated(region.type)) {
      continue;
    }
    const uint64_t step = OrderBytes(OrderOf(region.page_size));
    for (uint64_t offset = 0; offset < region.bytes; offset += step) {
      Status mapped =
          device.iommu->Map(region.gpa + offset, region.hpa + offset, region.page_size);
      SILOZ_RETURN_IF_ERROR(mapped);
    }
  }
  txn.Commit();
  devices_.emplace(id, std::move(device));
  return id;
}

Result<uint64_t> SilozHypervisor::DeviceDma(uint32_t device_id, uint64_t iova) {
  MutexLock lock(mu_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return MakeError(ErrorCode::kNotFound, "no device " + std::to_string(device_id));
  }
  const PassthroughDevice& device = it->second;
  Result<uint64_t> hpa = device.iommu->Translate(iova);
  if (!hpa.ok()) {
    // Unmapped IOVA: the IOMMU blocks the DMA (no such window).
    if (hpa.error().code == ErrorCode::kNotFound) {
      return MakeError(ErrorCode::kPermissionDenied,
                       "DMA to unmapped IOVA " + std::to_string(iova) + " blocked");
    }
    return hpa.error();  // secure-mode integrity violations surface as-is
  }
  // Defense in depth: the translated address must stay inside the owning
  // VM's provisioned ranges, else the table was corrupted.
  Result<Vm*> vm = GetVmLocked(device.vm);
  SILOZ_RETURN_IF_ERROR(vm);
  for (const PhysRange& range : (*vm)->AllowedHpaRanges()) {
    if (range.Contains(*hpa)) {
      return *hpa;
    }
  }
  ++obs_counts_.ept_violations;
  return MakeError(ErrorCode::kIntegrityViolation,
                   "IOMMU resolved IOVA " + std::to_string(iova) +
                       " outside the VM's subarray groups");
}

Status SilozHypervisor::AuditDeviceIsolation(uint32_t device_id) const {
  MutexLock lock(mu_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return MakeError(ErrorCode::kNotFound, "no device " + std::to_string(device_id));
  }
  const PassthroughDevice& device = it->second;
  auto vm_it = vms_.find(device.vm);
  SILOZ_CHECK(vm_it != vms_.end());
  const Vm& vm = *vm_it->second;
  for (const VmRegion& region : vm.regions()) {
    if (!IsUnmediated(region.type)) {
      continue;
    }
    const uint64_t step = OrderBytes(OrderOf(region.page_size));
    for (uint64_t offset = 0; offset < region.bytes; offset += step) {
      Result<uint64_t> hpa = device.iommu->Translate(region.gpa + offset);
      SILOZ_RETURN_IF_ERROR(hpa);
      if (*hpa != region.hpa + offset) {
        ++obs_counts_.ept_violations;
        return MakeError(ErrorCode::kIntegrityViolation,
                         "IOMMU maps IOVA " + std::to_string(region.gpa + offset) +
                             " to HPA " + std::to_string(*hpa) + ", expected " +
                             std::to_string(region.hpa + offset));
      }
    }
  }
  if (config_.enabled && config_.ept_protection == EptProtection::kGuardRows) {
    const auto& pool_ranges = ept_pool_ranges_[vm.config().socket];
    for (uint64_t page : device.iommu->table_pages()) {
      bool inside = false;
      for (const PhysRange& range : pool_ranges) {
        inside |= range.Contains(page);
      }
      if (!inside) {
        ++obs_counts_.ept_violations;
        return MakeError(ErrorCode::kIntegrityViolation,
                         "IOMMU table page outside the protected row group");
      }
    }
  }
  return Status::Ok();
}

Status SilozHypervisor::RemovePassthroughDevice(uint32_t device_id) {
  MutexLock lock(mu_);
  return RemovePassthroughDeviceLocked(device_id);
}

Status SilozHypervisor::RemovePassthroughDeviceLocked(uint32_t device_id) {
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return MakeError(ErrorCode::kNotFound, "no device " + std::to_string(device_id));
  }
  const uint32_t socket = vms_.at(it->second.vm)->config().socket;
  std::vector<uint64_t>& pages = it->second.table_pages;
  while (!pages.empty()) {
    SILOZ_RETURN_IF_ERROR(ReturnEptPage(socket, pages.back()));
    pages.pop_back();
  }
  devices_.erase(it);
  return Status::Ok();
}

Result<std::vector<uint64_t>> SilozHypervisor::DeviceTablePages(uint32_t device_id) const {
  MutexLock lock(mu_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return MakeError(ErrorCode::kNotFound, "no device " + std::to_string(device_id));
  }
  return it->second.table_pages;
}

Status SilozHypervisor::HostShutdown() {
  // Privileged teardown: kill every VM and release every reservation,
  // ignoring active subarray-group constraints (§5.3).
  MutexLock lock(mu_);
  while (!devices_.empty()) {
    SILOZ_RETURN_IF_ERROR(RemovePassthroughDeviceLocked(devices_.begin()->first));
  }
  std::vector<VmId> ids;
  for (const auto& [id, vm] : vms_) {
    ids.push_back(id);
  }
  for (VmId id : ids) {
    if (destroyed_vms_.count(id) == 0) {
      SILOZ_RETURN_IF_ERROR(DestroyVmLocked(id));
    }
    SILOZ_RETURN_IF_ERROR(ReleaseVmNodesLocked(id));
  }
  return Status::Ok();
}

size_t SilozHypervisor::ept_pool_free(uint32_t socket) const {
  MutexLock lock(mu_);
  SILOZ_CHECK_LT(socket, ept_pool_.size());
  return ept_pool_[socket].size();
}

const std::vector<PhysRange>& SilozHypervisor::ept_pool_ranges(uint32_t socket) const {
  SILOZ_CHECK_LT(socket, ept_pool_ranges_.size());
  return ept_pool_ranges_[socket];
}

}  // namespace siloz
