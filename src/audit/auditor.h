// Static isolation-domain analyzer.
//
// Siloz's security argument is config-independent and topological: given the
// platform's physical-to-media decoder, the DIMM remap chain, the logical-node
// provisioning plan, and the guard-row layout, either every logical NUMA node
// is a closed DRAM isolation domain or it is not — no workload needs to run
// to decide. The Auditor proves (exhaustively in row space, stratified-sample-
// exhaustively in the 384 GiB physical space) four invariants over a booted
// SilozHypervisor's plan:
//
//  1. decoder invertibility — every physical address maps to exactly one
//     (bank, subarray, row) and back (§5.3 relies on inverting the map);
//  2. domain closure — no logical node's page set spans a subarray-group
//     boundary, before or after the DDR4 remap chain (§4.2, §6);
//  3. guard fencing — every EPT row is separated from any allocatable row by
//     at least blast-radius guard rows, under all rank/side transforms (§5.4);
//  4. blast-radius containment — every fault-model neighbour (including
//     mirrored/inverted half-row images) of a guest-mappable row stays inside
//     that row's domain or hits an offlined guard row (§6, §7.4).
//
// The auditor can evaluate the plan against a *different* decoder than the
// one the hypervisor booted with, modelling a machine whose BIOS mapping
// deviates from what early boot assumed — the failure mode the paper's §5.3
// translation-driver port exists to prevent. corrupt_decoder.h provides
// deliberately wrong decoders for negative testing.
#ifndef SILOZ_SRC_AUDIT_AUDITOR_H_
#define SILOZ_SRC_AUDIT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/audit/findings.h"
#include "src/dram/fault_model.h"
#include "src/dram/remap.h"
#include "src/siloz/hypervisor.h"
#include "src/siloz/vm.h"

namespace siloz::audit {

struct Options {
  // Silicon ground-truth subarray size in rows; 0 = trust the hypervisor's
  // effective size. Setting this to the real value exposes provisioning
  // plans built from a wrong boot parameter (§7.4).
  uint32_t silicon_rows_per_subarray = 0;
  // Internal-row distance disturbance can travel. Defaults to the fault
  // model's reach (distance-2, Half-Double-style).
  uint32_t blast_radius = BlastRadiusRows(DisturbanceProfile{});
  // Physical-space probe stride for the invertibility/closure passes. Every
  // range endpoint is probed regardless; the stride samples interiors.
  uint64_t probe_stride = 256 * 1024;
  // Deterministic pseudo-random probes added per pass (seeded, reproducible).
  uint64_t random_probes = 4096;
  // Probe every 4 KiB page instead of striding (~10^8 probes; CI uses the
  // stratified default).
  bool exhaustive = false;
  uint64_t seed = 0xA0D17;
  // Findings retained per invariant; further violations are only counted.
  size_t max_findings_per_invariant = 16;
  // Worker threads for the blast-radius scan (the ~4.2M-probe pass): 0 =
  // $SILOZ_THREADS or hardware concurrency, 1 = serial scan. The scan is
  // sharded by subarray group and shard reports merge in slice order, so
  // findings, counters, and report bytes are identical for every value.
  uint32_t threads = 0;
};

class Auditor {
 public:
  // Audits `hypervisor`'s boot-time plan against `truth` — the machine's
  // actual physical-to-media mapping. `remap` is the platform's DIMM-internal
  // transform chain (Table 1). The hypervisor must be booted in Siloz mode.
  Auditor(const SilozHypervisor& hypervisor, const AddressDecoder& truth,
          const RemapConfig& remap, Options options = {});

  // Convenience: the machine's mapping is the decoder the hypervisor booted
  // with (the common, non-adversarial case).
  explicit Auditor(const SilozHypervisor& hypervisor, const RemapConfig& remap = RemapConfig{},
                   Options options = {});

  // Runs all four invariant passes.
  Report Run() const;

  // Individual passes, composable for targeted checks.
  void CheckDecoderInvertibility(Report& report) const;
  void CheckDomainClosure(Report& report) const;
  void CheckGuardFencing(Report& report) const;
  void CheckBlastRadius(Report& report) const;

  // Optional live-VM pass: walks the VM's EPT *bytes* (not the expected
  // region list) and verifies every present leaf mapping lands inside the
  // VM's provisioned ranges. A hammered PTE shows up with its corrupted HPA
  // and decoded coordinates.
  void CheckVmContainment(const Vm& vm, Report& report) const;

  uint32_t silicon_rows_per_subarray() const { return silicon_rows_; }
  uint32_t effective_rows_per_subarray() const { return effective_rows_; }

 private:
  // What the provisioning plan says about one media row group.
  struct RowStatus {
    uint32_t node = 0;          // owning logical node id
    NodeKind kind = NodeKind::kHostReserved;
    bool offlined = false;      // representative page removed (guard row)
    bool ept_pool = false;      // row group seeds the protected EPT pool
    uint64_t phys = 0;          // representative physical page
  };

  // One contiguous run of media rows of one (socket, cluster) — the unit of
  // the parallel blast-radius scan, aligned to the presumed subarray size.
  struct ScanShard {
    uint32_t socket = 0;
    uint32_t cluster = 0;
    uint32_t row_begin = 0;
    uint32_t row_end = 0;
  };

  // Blast-radius pass over one shard, accumulating into `report` (shard-
  // local in the parallel scan). Touches only const state, so shards are
  // safe to run concurrently.
  void ScanBlastRadiusShard(const ScanShard& shard, Report& report) const;

  // Presumed global group of media row `row` in (socket, cluster).
  Result<uint32_t> GroupOfRow(uint32_t socket, uint32_t cluster, uint32_t row) const;
  Result<RowStatus> StatusOfRow(uint32_t socket, uint32_t cluster, uint32_t rank,
                                uint32_t row) const;
  // Appends a finding with decoded coordinates filled in from `phys`.
  void AddFinding(Report& report, Invariant invariant, uint64_t phys, uint32_t internal_row,
                  std::string detail) const;

  const SilozHypervisor& hypervisor_;
  const AddressDecoder& truth_;
  RowRemapper remapper_;
  Options options_;
  std::vector<const NumaNode*> nodes_by_id_;  // dense node ids -> registry entries
  uint32_t effective_rows_;  // the hypervisor's presumed subarray size
  uint32_t silicon_rows_;    // ground truth used for adjacency clipping
};

// Boots a fresh hypervisor with `config` on `boot_decoder` (flat-backed, no
// VMs) and audits the resulting plan against `truth_decoder`. Returns the
// boot error if provisioning itself fails.
Result<Report> AuditProvisioningPlan(const AddressDecoder& boot_decoder,
                                     const AddressDecoder& truth_decoder,
                                     const SilozConfig& config, const RemapConfig& remap,
                                     const Options& options = {});

// Same, with the boot decoder as ground truth.
Result<Report> AuditPlatform(const AddressDecoder& decoder, const SilozConfig& config,
                             const RemapConfig& remap = RemapConfig{},
                             const Options& options = {});

}  // namespace siloz::audit

#endif  // SILOZ_SRC_AUDIT_AUDITOR_H_
