#include "src/audit/corrupt_decoder.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz::audit {

const char* CorruptionName(Corruption corruption) {
  switch (corruption) {
    case Corruption::kShiftedJump:
      return "shifted-jump";
    case Corruption::kBrokenInverse:
      return "broken-inverse";
  }
  return "unknown";
}

CorruptedDecoder::CorruptedDecoder(const AddressDecoder& inner, Corruption corruption,
                                   uint64_t region_bytes)
    : inner_(inner), corruption_(corruption), region_bytes_(region_bytes) {
  SILOZ_CHECK_GT(region_bytes_, 0u);
  SILOZ_CHECK_EQ(inner_.geometry().socket_bytes() % region_bytes_, 0u)
      << "mapping-jump period must divide the socket";
}

Result<MediaAddress> CorruptedDecoder::PhysToMedia(uint64_t phys) const {
  if (corruption_ == Corruption::kBrokenInverse) {
    return inner_.PhysToMedia(phys);
  }
  // kShiftedJump: the machine placed every jump one region early, i.e. the
  // socket's layout is rotated by one region relative to the intact map.
  const uint64_t socket_bytes = inner_.geometry().socket_bytes();
  if (phys >= inner_.geometry().total_bytes()) {
    return inner_.PhysToMedia(phys);  // let the inner decoder report the error
  }
  const uint64_t socket_base = phys - (phys % socket_bytes);
  const uint64_t rotated = (phys - socket_base + region_bytes_) % socket_bytes;
  return inner_.PhysToMedia(socket_base + rotated);
}

Result<uint64_t> CorruptedDecoder::MediaToPhys(const MediaAddress& media) const {
  Result<uint64_t> phys = inner_.MediaToPhys(media);
  SILOZ_RETURN_IF_ERROR(phys);
  if (corruption_ == Corruption::kBrokenInverse) {
    // Off by one 4 KiB page: the inverse disagrees with the forward map, but
    // stays inside the physical space (total bytes is a multiple of 8 KiB).
    return *phys ^ kPage4K;
  }
  const uint64_t socket_bytes = inner_.geometry().socket_bytes();
  const uint64_t socket_base = *phys - (*phys % socket_bytes);
  const uint64_t rotated = (*phys - socket_base + socket_bytes - region_bytes_) % socket_bytes;
  return socket_base + rotated;
}

std::string CorruptedDecoder::name() const {
  return inner_.name() + "+" + CorruptionName(corruption_);
}

}  // namespace siloz::audit
