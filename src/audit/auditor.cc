#include "src/audit/auditor.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/hostmem/buddy.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace siloz::audit {
namespace {

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

}  // namespace

Auditor::Auditor(const SilozHypervisor& hypervisor, const AddressDecoder& truth,
                 const RemapConfig& remap, Options options)
    : hypervisor_(hypervisor),
      truth_(truth),
      remapper_(truth.geometry(), remap),
      options_(options),
      effective_rows_(hypervisor.effective_rows_per_subarray()),
      silicon_rows_(options.silicon_rows_per_subarray != 0 ? options.silicon_rows_per_subarray
                                                           : hypervisor.effective_rows_per_subarray()) {
  SILOZ_CHECK(hypervisor_.booted()) << "the audit inspects a boot-time plan; call Boot() first";
  SILOZ_CHECK_GT(options_.blast_radius, 0u);
  SILOZ_CHECK_GT(options_.probe_stride, 0u);
  nodes_by_id_ = hypervisor_.nodes().AllNodes();
}

Auditor::Auditor(const SilozHypervisor& hypervisor, const RemapConfig& remap, Options options)
    : Auditor(hypervisor, hypervisor.decoder(), remap, options) {}

Report Auditor::Run() const {
  obs::TraceSpan span("audit.Run");
  Report report;
  CheckDecoderInvertibility(report);
  // The remaining invariants are statements about the Siloz provisioning
  // plan; a baseline-mode hypervisor has no subarray-group plan to audit.
  if (hypervisor_.config().enabled) {
    CheckDomainClosure(report);
    CheckGuardFencing(report);
    CheckBlastRadius(report);
  }
  // Probe census per invariant. Probe counts depend only on geometry and
  // options, never on scheduling, so these counters join the determinism
  // contract alongside the report bytes.
  obs::Registry& registry = obs::Registry::Global();
  for (Invariant invariant :
       {Invariant::kDecoderInvertibility, Invariant::kDomainClosure, Invariant::kGuardFencing,
        Invariant::kBlastRadius}) {
    const InvariantStats& stats = report.StatsFor(invariant);
    if (!stats.ran) {
      continue;
    }
    const std::string name = InvariantName(invariant);
    registry.GetCounter("audit.probes." + name).Add(stats.probes);
    if (stats.violations > 0) {
      registry.GetCounter("audit.violations." + name).Add(stats.violations);
    }
  }
  return report;
}

Result<uint32_t> Auditor::GroupOfRow(uint32_t socket, uint32_t cluster, uint32_t row) const {
  return hypervisor_.group_map().GroupAt(socket, cluster, row / effective_rows_);
}

Result<Auditor::RowStatus> Auditor::StatusOfRow(uint32_t socket, uint32_t cluster, uint32_t rank,
                                                uint32_t row) const {
  const DramGeometry& geom = truth_.geometry();
  Result<uint32_t> group = GroupOfRow(socket, cluster, row);
  SILOZ_RETURN_IF_ERROR(group);
  Result<uint32_t> node_id = hypervisor_.NodeOfGroup(*group);
  SILOZ_RETURN_IF_ERROR(node_id);
  SILOZ_CHECK_LT(*node_id, nodes_by_id_.size());
  const NumaNode* node = nodes_by_id_[*node_id];

  // Representative page of the row: bank 0 of the rank, first column, first
  // channel of the cluster. Guard offlining and EPT seeding operate on whole
  // row groups, so one page's status stands for the row's.
  MediaAddress media;
  media.socket = socket;
  media.channel = cluster * (geom.channels_per_socket / truth_.clusters_per_socket());
  media.rank = rank;
  media.row = row;
  Result<uint64_t> phys = truth_.MediaToPhys(media);
  SILOZ_RETURN_IF_ERROR(phys);

  RowStatus status;
  status.node = *node_id;
  status.kind = node->kind();
  status.offlined = node->allocator().IsOfflined(*phys);
  status.phys = *phys;
  for (const PhysRange& range : hypervisor_.ept_pool_ranges(socket)) {
    if (range.Contains(*phys)) {
      status.ept_pool = true;
      break;
    }
  }
  return status;
}

void Auditor::AddFinding(Report& report, Invariant invariant, uint64_t phys, uint32_t internal_row,
                         std::string detail) const {
  Finding finding;
  finding.invariant = invariant;
  finding.severity = Severity::kCritical;
  finding.phys = phys;
  finding.internal_row = internal_row;
  finding.detail = std::move(detail);
  Result<MediaAddress> media = truth_.PhysToMedia(phys);
  if (media.ok()) {
    finding.media = *media;
    Result<uint32_t> group =
        GroupOfRow(media->socket, truth_.ClusterOf(*media), media->row);
    if (group.ok()) {
      finding.group = *group;
    }
  }
  report.Add(std::move(finding), options_.max_findings_per_invariant);
}

// --- Invariant 1: phys <-> media is a bijection -----------------------------

void Auditor::CheckDecoderInvertibility(Report& report) const {
  InvariantStats& stats = report.StatsFor(Invariant::kDecoderInvertibility);
  stats.ran = true;
  const DramGeometry& geom = truth_.geometry();
  const uint64_t total = geom.total_bytes();
  Rng rng(options_.seed);

  auto probe_phys = [&](uint64_t phys) {
    ++stats.probes;
    Result<MediaAddress> media = truth_.PhysToMedia(phys);
    if (!media.ok()) {
      AddFinding(report, Invariant::kDecoderInvertibility, phys, 0,
                 "physical address does not decode: " + media.error().ToString());
      return;
    }
    if (Status valid = ValidateAddress(geom, *media); !valid.ok()) {
      AddFinding(report, Invariant::kDecoderInvertibility, phys, 0,
                 "decoded media address out of geometry bounds: " + valid.error().ToString());
      return;
    }
    Result<uint64_t> back = truth_.MediaToPhys(*media);
    if (!back.ok()) {
      AddFinding(report, Invariant::kDecoderInvertibility, phys, 0,
                 "media address does not map back: " + back.error().ToString());
    } else if (*back != phys) {
      AddFinding(report, Invariant::kDecoderInvertibility, phys, 0,
                 "round trip returns " + Hex(*back) + " instead of " + Hex(phys) +
                     ": decoder is not its own inverse");
    }
  };

  // Stratified physical sweep: fixed stride plus seeded random fill, so every
  // interleave period is sampled without 10^8 exhaustive probes (available
  // via options.exhaustive).
  const uint64_t stride = options_.exhaustive ? kPage4K : options_.probe_stride;
  for (uint64_t phys = 0; phys < total; phys += stride) {
    probe_phys(phys);
  }
  probe_phys(total - kCacheLineBytes);
  for (uint64_t i = 0; i < options_.random_probes; ++i) {
    probe_phys(rng.NextBelow(total));
  }

  // Media-space sweep: the inverse direction, over every (socket, channel,
  // dimm, rank, bank) combination at subarray-boundary and random rows.
  std::set<uint32_t> rows = {0, effective_rows_ - 1, geom.rows_per_bank - 1};
  if (effective_rows_ < geom.rows_per_bank) {
    rows.insert(effective_rows_);
  }
  for (int i = 0; i < 4; ++i) {
    rows.insert(static_cast<uint32_t>(rng.NextBelow(geom.rows_per_bank)));
  }
  const uint32_t last_column = static_cast<uint32_t>(geom.row_bytes - kCacheLineBytes);
  auto probe_media = [&](const MediaAddress& media) {
    ++stats.probes;
    Result<uint64_t> phys = truth_.MediaToPhys(media);
    if (!phys.ok()) {
      AddFinding(report, Invariant::kDecoderInvertibility, 0, 0,
                 "media address " + media.ToString() +
                     " has no physical image: " + phys.error().ToString());
      return;
    }
    if (*phys >= total) {
      AddFinding(report, Invariant::kDecoderInvertibility, *phys, 0,
                 "media address " + media.ToString() + " maps outside the physical space");
      return;
    }
    Result<MediaAddress> back = truth_.PhysToMedia(*phys);
    if (!back.ok() || !(*back == media)) {
      AddFinding(report, Invariant::kDecoderInvertibility, *phys, 0,
                 "media round trip through " + Hex(*phys) + " does not return " +
                     media.ToString());
    }
  };
  MediaAddress media;
  for (media.socket = 0; media.socket < geom.sockets; ++media.socket) {
    for (media.channel = 0; media.channel < geom.channels_per_socket; ++media.channel) {
      for (media.dimm = 0; media.dimm < geom.dimms_per_channel; ++media.dimm) {
        for (media.rank = 0; media.rank < geom.ranks_per_dimm; ++media.rank) {
          for (media.bank = 0; media.bank < geom.banks_per_rank; ++media.bank) {
            for (uint32_t row : rows) {
              media.row = row;
              media.column = 0;
              probe_media(media);
              media.column = last_column;
              probe_media(media);
            }
          }
        }
      }
    }
  }
}

// --- Invariant 2: every node's pages stay inside its groups -----------------

void Auditor::CheckDomainClosure(Report& report) const {
  InvariantStats& stats = report.StatsFor(Invariant::kDomainClosure);
  stats.ran = true;
  const DramGeometry& geom = truth_.geometry();
  Rng rng(options_.seed ^ 0x5107u);

  auto probe = [&](const NumaNode* node, uint64_t phys) {
    ++stats.probes;
    Result<MediaAddress> media = truth_.PhysToMedia(phys);
    if (!media.ok()) {
      AddFinding(report, Invariant::kDomainClosure, phys, 0,
                 "page of node " + std::to_string(node->id()) +
                     " does not decode: " + media.error().ToString());
      return;
    }
    if (media->socket != node->physical_socket()) {
      AddFinding(report, Invariant::kDomainClosure, phys, 0,
                 "page of node " + std::to_string(node->id()) + " decodes to socket " +
                     std::to_string(media->socket) + ", node is pinned to socket " +
                     std::to_string(node->physical_socket()));
      return;
    }
    Result<uint32_t> group = GroupOfRow(media->socket, truth_.ClusterOf(*media), media->row);
    if (!group.ok()) {
      AddFinding(report, Invariant::kDomainClosure, phys, 0,
                 "page has no subarray group: " + group.error().ToString());
      return;
    }
    Result<uint32_t> owner = hypervisor_.NodeOfGroup(*group);
    if (!owner.ok() || *owner != node->id()) {
      AddFinding(report, Invariant::kDomainClosure, phys, 0,
                 "page provisioned to node " + std::to_string(node->id()) +
                     " decodes into subarray group " + std::to_string(*group) + " owned by " +
                     (owner.ok() ? "node " + std::to_string(*owner) : "nobody") +
                     ": the node spans a group boundary");
    }
  };

  const uint64_t stride = options_.exhaustive ? kPage4K : options_.probe_stride;
  for (const NumaNode* node : nodes_by_id_) {
    for (const PhysRange& range : node->ranges()) {
      for (uint64_t phys = range.begin; phys < range.end; phys += stride) {
        probe(node, phys);
      }
      probe(node, range.end - kCacheLineBytes);
      for (int i = 0; i < 16; ++i) {
        probe(node, range.begin + rng.NextBelow(range.size()));
      }
    }
  }

  // Post-remap closure (§6): the DIMM transform chain must permute media
  // subarray blocks onto whole internal blocks, for every rank and half-row
  // side, or a media-level group physically straddles two internal
  // subarrays. Exhaustive over row space — it is only 2^17 rows per bank.
  const uint32_t banks = remapper_.config().repairs.empty() ? 1 : geom.banks_per_rank;
  for (uint32_t rank = 0; rank < geom.ranks_per_dimm; ++rank) {
    for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
      for (uint32_t bank = 0; bank < banks; ++bank) {
        for (uint32_t base = 0; base < geom.rows_per_bank; base += effective_rows_) {
          const uint32_t block = remapper_.ToInternal(base, rank, bank, side) / effective_rows_;
          for (uint32_t row = base; row < std::min(base + effective_rows_, geom.rows_per_bank);
               ++row) {
            ++stats.probes;
            const uint32_t internal = remapper_.ToInternal(row, rank, bank, side);
            if (internal / effective_rows_ != block) {
              MediaAddress media;
              media.rank = rank;
              media.bank = bank;
              media.row = row;
              Result<uint64_t> phys = truth_.MediaToPhys(media);
              AddFinding(report, Invariant::kDomainClosure, phys.ok() ? *phys : 0, internal,
                         "remap chain (rank " + std::to_string(rank) + ", side " +
                             HalfRowSideName(side) + ") scatters media block " +
                             std::to_string(base / effective_rows_) + " across internal blocks " +
                             std::to_string(block) + " and " +
                             std::to_string(internal / effective_rows_));
            }
          }
        }
      }
    }
  }
}

// --- Invariant 3: EPT rows fenced by >= blast-radius guard rows -------------

void Auditor::CheckGuardFencing(Report& report) const {
  if (hypervisor_.config().ept_protection != EptProtection::kGuardRows) {
    return;  // nothing to fence; stats stay "skipped"
  }
  InvariantStats& stats = report.StatsFor(Invariant::kGuardFencing);
  stats.ran = true;
  const DramGeometry& geom = truth_.geometry();
  const uint32_t banks = remapper_.config().repairs.empty() ? 1 : geom.banks_per_rank;

  for (uint32_t socket = 0; socket < geom.sockets; ++socket) {
    // Decode the EPT pool back to media rows; the plan puts each socket's
    // pool in one row group, but the audit re-derives that from the bytes.
    std::set<std::pair<uint32_t, uint32_t>> ept_rows;  // (cluster, media row)
    for (const PhysRange& range : hypervisor_.ept_pool_ranges(socket)) {
      for (uint64_t phys = range.begin; phys < range.end; phys += kPage4K) {
        Result<MediaAddress> media = truth_.PhysToMedia(phys);
        if (!media.ok()) {
          AddFinding(report, Invariant::kGuardFencing, phys, 0,
                     "EPT pool page does not decode: " + media.error().ToString());
          continue;
        }
        ept_rows.insert({truth_.ClusterOf(*media), media->row});
      }
    }

    for (const auto& [cluster, ept_row] : ept_rows) {
      for (uint32_t rank = 0; rank < geom.ranks_per_dimm; ++rank) {
        for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
          for (uint32_t bank = 0; bank < banks; ++bank) {
            const uint32_t internal = remapper_.ToInternal(ept_row, rank, bank, side);
            // Disturbance cannot leave the silicon subarray, whatever size
            // Siloz presumed at boot.
            const uint32_t lo = (internal / silicon_rows_) * silicon_rows_;
            const uint32_t hi = std::min(lo + silicon_rows_, geom.rows_per_bank);
            const uint32_t jlo =
                internal > lo + options_.blast_radius ? internal - options_.blast_radius : lo;
            const uint32_t jhi = std::min(hi - 1, internal + options_.blast_radius);
            for (uint32_t j = jlo; j <= jhi; ++j) {
              if (j == internal) {
                continue;
              }
              ++stats.probes;
              const uint32_t neighbour = remapper_.ToMedia(j, rank, bank, side);
              Result<RowStatus> status = StatusOfRow(socket, cluster, rank, neighbour);
              if (!status.ok()) {
                AddFinding(report, Invariant::kGuardFencing, 0, j,
                           "cannot resolve neighbour row " + std::to_string(neighbour) +
                               " of EPT row: " + status.error().ToString());
                continue;
              }
              if (!status->offlined && !status->ept_pool) {
                AddFinding(report, Invariant::kGuardFencing, status->phys, j,
                           "allocatable media row " + std::to_string(neighbour) + " (node " +
                               std::to_string(status->node) + ") is " +
                               std::to_string(j > internal ? j - internal : internal - j) +
                               " internal row(s) from EPT row " + std::to_string(ept_row) +
                               " (rank " + std::to_string(rank) + ", side " +
                               HalfRowSideName(side) + "): guard band thinner than the blast radius");
              }
            }
          }
        }
      }
    }
  }
}

// --- Invariant 4: disturbance never crosses a domain boundary ---------------

void Auditor::CheckBlastRadius(Report& report) const {
  report.StatsFor(Invariant::kBlastRadius).ran = true;
  const DramGeometry& geom = truth_.geometry();
  const uint32_t clusters = truth_.clusters_per_socket();

  // Shard the row space by presumed subarray group, in the serial scan's
  // enumeration order (socket, cluster, row block). Every shard accumulates
  // into a private report; merging them in shard order reproduces the
  // serial findings byte-for-byte (see Report::Merge), so the scan is free
  // to run the shards on any number of threads.
  std::vector<ScanShard> shards;
  for (uint32_t socket = 0; socket < geom.sockets; ++socket) {
    for (uint32_t cluster = 0; cluster < clusters; ++cluster) {
      for (uint32_t base = 0; base < geom.rows_per_bank; base += effective_rows_) {
        shards.push_back(ScanShard{socket, cluster, base,
                                   std::min(base + effective_rows_, geom.rows_per_bank)});
      }
    }
  }

  std::vector<Report> locals(shards.size());
  ThreadPool pool(options_.threads);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    obs::TraceSpan scan_span("audit.BlastRadiusScan");
    pool.ParallelFor(0, shards.size(),
                     [&](uint64_t i) { ScanBlastRadiusShard(shards[i], locals[i]); });
  }
  report.scan_wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  report.scan_pool = pool.metrics();
  // Shard sizes are fixed by geometry, so observing them in shard order on
  // the coordinating thread keeps the histogram thread-count-invariant.
  obs::Histogram& per_shard =
      obs::Registry::Global().GetHistogram("audit.blast_radius.probes_per_shard");
  for (const Report& local : locals) {
    per_shard.Observe(local.StatsFor(Invariant::kBlastRadius).probes);
    report.Merge(local, options_.max_findings_per_invariant);
  }
}

void Auditor::ScanBlastRadiusShard(const ScanShard& shard, Report& report) const {
  InvariantStats& stats = report.StatsFor(Invariant::kBlastRadius);
  const DramGeometry& geom = truth_.geometry();
  const uint32_t banks = remapper_.config().repairs.empty() ? 1 : geom.banks_per_rank;

  const uint32_t socket = shard.socket;
  const uint32_t cluster = shard.cluster;
  for (uint32_t row = shard.row_begin; row < shard.row_end; ++row) {
    Result<uint32_t> group = GroupOfRow(socket, cluster, row);
    Result<uint32_t> owner =
        group.ok() ? hypervisor_.NodeOfGroup(*group)
                   : Result<uint32_t>(group.error());
    if (!owner.ok()) {
      continue;  // closure pass reports unresolvable rows
    }
    for (uint32_t rank = 0; rank < geom.ranks_per_dimm; ++rank) {
      for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
        for (uint32_t bank = 0; bank < banks; ++bank) {
          const uint32_t internal = remapper_.ToInternal(row, rank, bank, side);
          const uint32_t lo = (internal / silicon_rows_) * silicon_rows_;
          const uint32_t hi = std::min(lo + silicon_rows_, geom.rows_per_bank);
          const uint32_t jlo =
              internal > lo + options_.blast_radius ? internal - options_.blast_radius : lo;
          const uint32_t jhi = std::min(hi - 1, internal + options_.blast_radius);
          for (uint32_t j = jlo; j <= jhi; ++j) {
            if (j == internal) {
              continue;
            }
            ++stats.probes;
            const uint32_t neighbour = remapper_.ToMedia(j, rank, bank, side);
            // Same presumed block -> same group -> same node: the common
            // case, because the remap chain permutes block-to-block.
            if (neighbour / effective_rows_ == row / effective_rows_) {
              continue;
            }
            Result<uint32_t> group2 = GroupOfRow(socket, cluster, neighbour);
            Result<uint32_t> owner2 =
                group2.ok() ? hypervisor_.NodeOfGroup(*group2)
                            : Result<uint32_t>(group2.error());
            if (owner2.ok() && *owner2 == *owner) {
              continue;  // e.g. two host groups of the same host node
            }
            Result<RowStatus> status = StatusOfRow(socket, cluster, rank, row);
            Result<RowStatus> status2 = StatusOfRow(socket, cluster, rank, neighbour);
            if (!status.ok() || !status2.ok()) {
              AddFinding(report, Invariant::kBlastRadius, 0, j,
                         "cannot resolve cross-domain neighbours " + std::to_string(row) +
                             "/" + std::to_string(neighbour));
              continue;
            }
            if (status->offlined || status2->offlined) {
              continue;  // a guard row fences the boundary
            }
            const std::string relation =
                "media rows " + std::to_string(row) + " (node " + std::to_string(*owner) +
                ") and " + std::to_string(neighbour) + " (node " +
                (owner2.ok() ? std::to_string(*owner2) : "?") +
                ") are internal neighbours at distance " +
                std::to_string(j > internal ? j - internal : internal - j) + " (rank " +
                std::to_string(rank) + ", side " + HalfRowSideName(side) + ")";
            if (status->ept_pool || status2->ept_pool) {
              AddFinding(report, Invariant::kBlastRadius, status2->phys, j,
                         relation + ": EPT rows reachable from a foreign domain");
            } else {
              AddFinding(report, Invariant::kBlastRadius, status2->phys, j,
                         relation + ": disturbance crosses the domain boundary");
            }
          }
        }
      }
    }
  }
}

// --- Optional live pass: a VM's EPT bytes vs its provisioning ---------------

void Auditor::CheckVmContainment(const Vm& vm, Report& report) const {
  const ExtendedPageTable* ept = vm.ept();
  if (ept == nullptr) {
    return;
  }
  InvariantStats& closure = report.StatsFor(Invariant::kDomainClosure);
  closure.ran = true;

  Status walk = ept->VisitLeafMappings([&](const ExtendedPageTable::LeafMapping& leaf) {
    ++closure.probes;
    const uint64_t bytes = PageSizeBytes(leaf.size);
    bool contained = false;
    for (const VmRegion& region : vm.regions()) {
      if (leaf.hpa >= region.hpa && leaf.hpa + bytes <= region.hpa + region.bytes) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      AddFinding(report, Invariant::kDomainClosure, leaf.hpa, 0,
                 "EPT leaf for GPA " + Hex(leaf.gpa) + " of VM " + std::to_string(vm.id()) +
                     " maps outside the VM's provisioned regions");
    }
  });
  if (!walk.ok()) {
    AddFinding(report, Invariant::kGuardFencing, ept->root_hpa(), 0,
               "EPT walk of VM " + std::to_string(vm.id()) +
                   " failed integrity verification: " + walk.error().ToString());
  }

  if (hypervisor_.config().ept_protection == EptProtection::kGuardRows) {
    InvariantStats& fencing = report.StatsFor(Invariant::kGuardFencing);
    fencing.ran = true;
    const std::vector<PhysRange>& pool = hypervisor_.ept_pool_ranges(vm.config().socket);
    for (uint64_t page : ept->table_pages()) {
      ++fencing.probes;
      bool contained = false;
      for (const PhysRange& range : pool) {
        if (range.Contains(page)) {
          contained = true;
          break;
        }
      }
      if (!contained) {
        AddFinding(report, Invariant::kGuardFencing, page, 0,
                   "EPT table page of VM " + std::to_string(vm.id()) +
                       " lies outside the guard-protected pool");
      }
    }
  }
}

// --- Convenience entry points -----------------------------------------------

Result<Report> AuditProvisioningPlan(const AddressDecoder& boot_decoder,
                                     const AddressDecoder& truth_decoder,
                                     const SilozConfig& config, const RemapConfig& remap,
                                     const Options& options) {
  if (!config.enabled) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "the static audit inspects a Siloz provisioning plan; enable Siloz mode");
  }
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(boot_decoder, memory, config);
  SILOZ_RETURN_IF_ERROR(hypervisor.Boot());
  return Auditor(hypervisor, truth_decoder, remap, options).Run();
}

Result<Report> AuditPlatform(const AddressDecoder& decoder, const SilozConfig& config,
                             const RemapConfig& remap, const Options& options) {
  return AuditProvisioningPlan(decoder, decoder, config, remap, options);
}

}  // namespace siloz::audit
