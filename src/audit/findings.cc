#include "src/audit/findings.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace siloz::audit {
namespace {

// Minimal JSON string escaping (details never contain control characters,
// but quotes and backslashes can appear in ToString() output).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const char* InvariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kDecoderInvertibility:
      return "decoder-invertibility";
    case Invariant::kDomainClosure:
      return "domain-closure";
    case Invariant::kGuardFencing:
      return "guard-fencing";
    case Invariant::kBlastRadius:
      return "blast-radius";
  }
  return "unknown";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  char head[160];
  std::snprintf(head, sizeof(head), "[%s] %s: phys 0x%" PRIx64, SeverityName(severity),
                InvariantName(invariant), phys);
  std::ostringstream out;
  out << head << " -> " << media.ToString() << " internal-row " << internal_row;
  if (group != kNoGroup) {
    out << " group " << group;
  }
  out << ": " << detail;
  return out.str();
}

std::string Finding::ToJson() const {
  std::ostringstream out;
  out << "{\"invariant\":\"" << InvariantName(invariant) << "\",\"severity\":\""
      << SeverityName(severity) << "\",\"phys\":" << phys << ",\"socket\":" << media.socket
      << ",\"channel\":" << media.channel << ",\"dimm\":" << media.dimm
      << ",\"rank\":" << media.rank << ",\"bank\":" << media.bank << ",\"row\":" << media.row
      << ",\"column\":" << media.column << ",\"internal_row\":" << internal_row << ",\"group\":";
  if (group == kNoGroup) {
    out << "null";
  } else {
    out << group;
  }
  out << ",\"detail\":\"" << JsonEscape(detail) << "\"}";
  return out.str();
}

InvariantStats& Report::StatsFor(Invariant invariant) {
  return stats[static_cast<size_t>(invariant)];
}

const InvariantStats& Report::StatsFor(Invariant invariant) const {
  return stats[static_cast<size_t>(invariant)];
}

uint64_t Report::total_probes() const {
  uint64_t total = 0;
  for (const InvariantStats& s : stats) {
    total += s.probes;
  }
  return total;
}

void Report::Add(Finding finding, size_t max_findings_per_invariant) {
  InvariantStats& s = StatsFor(finding.invariant);
  ++s.violations;
  size_t already = 0;
  for (const Finding& f : findings) {
    already += (f.invariant == finding.invariant);
  }
  if (already >= max_findings_per_invariant) {
    ++suppressed;
    return;
  }
  findings.push_back(std::move(finding));
}

void Report::Merge(const Report& shard, size_t max_findings_per_invariant) {
  for (size_t i = 0; i < 4; ++i) {
    stats[i].probes += shard.stats[i].probes;
    stats[i].violations += shard.stats[i].violations;
    stats[i].ran |= shard.stats[i].ran;
  }
  suppressed += shard.suppressed;
  for (const Finding& finding : shard.findings) {
    size_t already = 0;
    for (const Finding& f : findings) {
      already += (f.invariant == finding.invariant);
    }
    if (already >= max_findings_per_invariant) {
      ++suppressed;  // violation counters were merged wholesale above
    } else {
      findings.push_back(finding);
    }
  }
}

std::string Report::ToText() const {
  std::ostringstream out;
  out << "isolation audit: " << (ok() ? "PASS" : "FAIL") << "\n";
  for (size_t i = 0; i < 4; ++i) {
    const InvariantStats& s = stats[i];
    out << "  " << InvariantName(static_cast<Invariant>(i)) << ": ";
    if (!s.ran) {
      out << "skipped\n";
      continue;
    }
    out << s.probes << " probes, " << s.violations << " violation(s)\n";
  }
  for (const Finding& finding : findings) {
    out << "  " << finding.ToString() << "\n";
  }
  if (suppressed > 0) {
    out << "  (" << suppressed << " further finding(s) suppressed by the per-invariant cap)\n";
  }
  return out.str();
}

std::string Report::ToJson() const {
  std::ostringstream out;
  out << "{\"ok\":" << (ok() ? "true" : "false") << ",\"invariants\":{";
  for (size_t i = 0; i < 4; ++i) {
    const InvariantStats& s = stats[i];
    if (i != 0) {
      out << ",";
    }
    out << "\"" << InvariantName(static_cast<Invariant>(i)) << "\":{\"ran\":"
        << (s.ran ? "true" : "false") << ",\"probes\":" << s.probes
        << ",\"violations\":" << s.violations << "}";
  }
  out << "},\"suppressed\":" << suppressed << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    out << findings[i].ToJson();
  }
  out << "]}";
  return out.str();
}

}  // namespace siloz::audit
