// Structured findings emitted by the static isolation-domain analyzer.
//
// Siloz's security argument is a static, topological property of the boot
// configuration (decoder layout + remap chain + provisioning plan + guard
// placement). The auditor (auditor.h) proves that property without running
// any workload; when it cannot, it emits one AuditFinding per violation with
// the offending physical address, its decoded media/internal coordinates,
// and the invariant that failed — enough for an operator to locate the bad
// row on the real machine.
#ifndef SILOZ_SRC_AUDIT_FINDINGS_H_
#define SILOZ_SRC_AUDIT_FINDINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/dram/geometry.h"

namespace siloz::audit {

// The four invariants of the Siloz isolation argument (PAPER.md §4-§6).
enum class Invariant : uint8_t {
  kDecoderInvertibility,  // phys <-> (bank, subarray, row) is a bijection
  kDomainClosure,         // no logical node spans a group boundary after remap
  kGuardFencing,          // EPT/host carve-outs fenced by >= blast-radius rows
  kBlastRadius,           // all fault-model neighbours stay inside the domain
};

const char* InvariantName(Invariant invariant);

enum class Severity : uint8_t {
  kNote,      // informational (e.g. a pass that was skipped by configuration)
  kWarning,   // isolation holds but the margin is thinner than configured
  kCritical,  // the isolation property is violated
};

const char* SeverityName(Severity severity);

// One violation, pinned to a physical address and its decoded coordinates.
struct Finding {
  Invariant invariant = Invariant::kDecoderInvertibility;
  Severity severity = Severity::kCritical;
  uint64_t phys = 0;          // offending host physical address
  MediaAddress media;         // its decoded media coordinates
  uint32_t internal_row = 0;  // post-remap-chain internal row
  // Presumed global subarray group of `phys` (kNoGroup when undecodable).
  uint32_t group = kNoGroup;
  std::string detail;

  static constexpr uint32_t kNoGroup = 0xFFFFFFFF;

  std::string ToString() const;
  std::string ToJson() const;
};

// Per-invariant probe accounting, so "no findings" is distinguishable from
// "nothing was checked".
struct InvariantStats {
  uint64_t probes = 0;      // addresses/rows examined
  uint64_t violations = 0;  // findings attributed to this invariant
  bool ran = false;         // pass executed (vs skipped by configuration)
};

struct Report {
  std::vector<Finding> findings;
  InvariantStats stats[4];  // indexed by Invariant
  // Findings suppressed once a pass hit its per-invariant cap.
  uint64_t suppressed = 0;

  InvariantStats& StatsFor(Invariant invariant);
  const InvariantStats& StatsFor(Invariant invariant) const;

  bool ok() const { return findings.empty() && suppressed == 0; }
  uint64_t total_probes() const;

  // Scheduler accounting of the parallel blast-radius scan. Deliberately
  // excluded from ToText()/ToJson() so reports stay byte-identical across
  // thread counts; the CLI front ends print it separately.
  PoolMetrics scan_pool;
  double scan_wall_ms = 0.0;

  // Appends a finding unless the invariant's cap is exhausted; always bumps
  // the violation counter.
  void Add(Finding finding, size_t max_findings_per_invariant);

  // Folds in a shard report produced over a disjoint slice of a scan.
  // Shards keep at most `max_findings_per_invariant` findings each — the
  // earliest of their slice — so merging shards in slice order reproduces
  // the serial findings list, violation counters, and suppression count
  // exactly (the global first-N findings are a prefix-of-prefixes).
  void Merge(const Report& shard, size_t max_findings_per_invariant);

  std::string ToText() const;
  std::string ToJson() const;
};

}  // namespace siloz::audit

#endif  // SILOZ_SRC_AUDIT_FINDINGS_H_
