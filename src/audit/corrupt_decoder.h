// Deliberately wrong decoders for exercising the static audit.
//
// The auditor's value is that it *fails* on a machine whose real
// physical-to-media mapping deviates from what Siloz assumed at boot. These
// wrappers inject the two deviation classes the negative tests need:
//
//  - kShiftedJump: every mapping jump lands one 768 MiB region early — the
//    physical offset within each socket is rotated by one region, so half of
//    all pages silently belong to the neighbouring subarray group. Still a
//    bijection: invariant 1 passes, invariant 2 (domain closure) fails.
//  - kBrokenInverse: the forward map is correct but the inverse (the
//    direction §5.3's translation drivers provide) disagrees by one 4 KiB
//    page. Invariant 1 (invertibility) fails.
#ifndef SILOZ_SRC_AUDIT_CORRUPT_DECODER_H_
#define SILOZ_SRC_AUDIT_CORRUPT_DECODER_H_

#include <cstdint>
#include <string>

#include "src/addr/decoder.h"

namespace siloz::audit {

enum class Corruption : uint8_t {
  kShiftedJump,    // rotate each socket's layout by one mapping-jump region
  kBrokenInverse,  // MediaToPhys returns a different page than PhysToMedia
};

const char* CorruptionName(Corruption corruption);

// Wraps an intact decoder and misdecodes per `corruption`. The wrapper keeps
// the inner decoder's geometry and clustering, so it can stand in anywhere an
// AddressDecoder is expected.
class CorruptedDecoder final : public AddressDecoder {
 public:
  // `region_bytes` is the mapping-jump period to shift by (kShiftedJump);
  // SkylakeDecoder::region_bytes() for the platform being modelled.
  CorruptedDecoder(const AddressDecoder& inner, Corruption corruption, uint64_t region_bytes);

  const DramGeometry& geometry() const override { return inner_.geometry(); }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  uint32_t clusters_per_socket() const override { return inner_.clusters_per_socket(); }
  uint32_t ClusterOf(const MediaAddress& media) const override { return inner_.ClusterOf(media); }
  std::string name() const override;

 private:
  const AddressDecoder& inner_;
  Corruption corruption_;
  uint64_t region_bytes_;
};

}  // namespace siloz::audit

#endif  // SILOZ_SRC_AUDIT_CORRUPT_DECODER_H_
