// Clang Thread Safety Analysis annotation macros.
//
// These expand to Clang's capability attributes when compiling with Clang
// (where -Wthread-safety turns them into compile-time lock-discipline
// checks; the CI static-analysis leg builds with -Werror=thread-safety) and
// to nothing elsewhere, so GCC builds are unaffected. The macro set and
// naming follow the Clang documentation and Abseil's thread_annotations.h.
//
// Conventions in this codebase (DESIGN.md §12):
//  - Every member protected by a siloz::Mutex is declared GUARDED_BY(mu).
//  - Private helpers that assume the lock is already held are annotated
//    REQUIRES(mu) and named *Locked.
//  - Lambdas that run while the enclosing scope holds the lock (rollback
//    closures, allocator callbacks, condition-variable predicates) call
//    mu.AssertHeld() first, because the analysis examines a lambda body
//    without the enclosing function's lock set.
#ifndef SILOZ_SRC_BASE_THREAD_ANNOTATIONS_H_
#define SILOZ_SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SILOZ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SILOZ_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// Data members (and globals): which capability protects them.
#define GUARDED_BY(x) SILOZ_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SILOZ_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations.
#define ACQUIRED_BEFORE(...) SILOZ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SILOZ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function preconditions: capabilities that must (not) be held on entry.
#define REQUIRES(...) SILOZ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) SILOZ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SILOZ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release capabilities.
#define ACQUIRE(...) SILOZ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) SILOZ_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SILOZ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) SILOZ_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) SILOZ_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) SILOZ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SILOZ_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Runtime assertion that a capability is held (establishes it for analysis).
#define ASSERT_CAPABILITY(x) SILOZ_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) SILOZ_THREAD_ANNOTATION(assert_shared_capability(x))

// Type declarations.
#define CAPABILITY(x) SILOZ_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SILOZ_THREAD_ANNOTATION(scoped_lockable)
#define RETURN_CAPABILITY(x) SILOZ_THREAD_ANNOTATION(lock_returned(x))

// Opt-out for functions the analysis cannot model.
#define NO_THREAD_SAFETY_ANALYSIS SILOZ_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SILOZ_SRC_BASE_THREAD_ANNOTATIONS_H_
