// Minimal leveled logging to stderr.
//
// Experiments print structured tables on stdout; diagnostics go through this
// logger so they can be silenced (e.g. in property-test sweeps).
#ifndef SILOZ_SRC_BASE_LOG_H_
#define SILOZ_SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace siloz {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default kWarning so tests
// and benches stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Stream adapter used by the SILOZ_LOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace siloz

#define SILOZ_LOG(level) ::siloz::LogLine(::siloz::LogLevel::level, __FILE__, __LINE__)

#endif  // SILOZ_SRC_BASE_LOG_H_
