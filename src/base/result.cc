#include "src/base/result.h"

namespace siloz {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kNoMemory:
      return "NO_MEMORY";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kIntegrityViolation:
      return "INTEGRITY_VIOLATION";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
  }
  return "UNKNOWN";
}

}  // namespace siloz
