// Deterministic random number generation.
//
// All stochastic model components (per-row Rowhammer thresholds, workload
// address streams, fuzzer pattern synthesis, timing noise) draw from seeded
// Rng instances so every experiment is reproducible bit-for-bit. The
// implementation is xoshiro256++, seeded through SplitMix64.
#ifndef SILOZ_SRC_BASE_RNG_H_
#define SILOZ_SRC_BASE_RNG_H_

#include <array>
#include <cstdint>

namespace siloz {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64();

  // Uniform over [0, bound); bound must be nonzero. Uses rejection sampling
  // (Lemire) to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Standard normal via Box-Muller (no cached spare; cheap enough here).
  double NextGaussian();

  // Derive an independent child stream; deterministic in (parent seed, tag).
  Rng Fork(uint64_t tag);

 private:
  std::array<uint64_t, 4> state_;
};

// Zipfian sampler over [0, n) with skew theta (YCSB uses theta ~ 0.99):
// rank r is drawn with probability proportional to 1 / (r+1)^theta.
// Implements the Gray et al. rejection-free inverse method YCSB uses.
class ZipfianSampler {
 public:
  ZipfianSampler(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold_;  // probability mass of the two hottest items
};

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_RNG_H_
