// Deterministic random number generation.
//
// All stochastic model components (per-row Rowhammer thresholds, workload
// address streams, fuzzer pattern synthesis, timing noise) draw from seeded
// Rng instances so every experiment is reproducible bit-for-bit. The
// implementation is xoshiro256++, seeded through SplitMix64.
#ifndef SILOZ_SRC_BASE_RNG_H_
#define SILOZ_SRC_BASE_RNG_H_

#include <array>
#include <cstdint>

#include "src/base/check.h"

namespace siloz {

// The draw methods are header-inline: workload generation and the
// disturbance model draw ~10^8 times per bench run, and the three-deep
// call chain (NextBernoulli -> NextDouble -> NextU64) dominates otherwise.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform over [0, bound); bound must be nonzero. Uses rejection sampling
  // (Lemire) to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound) {
    SILOZ_CHECK_GT(bound, 0u);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) [[unlikely]] {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform over [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    SILOZ_CHECK_LE(lo, hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    // 53 high bits → uniform double in [0, 1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // True with probability p (clamped to [0,1]). The clamp branches consume
  // no randomness, so degenerate probabilities leave the stream untouched.
  bool NextBernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Standard normal via Box-Muller (no cached spare; cheap enough here).
  double NextGaussian();

  // Derive an independent child stream; deterministic in (parent seed, tag).
  Rng Fork(uint64_t tag);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

// Zipfian sampler over [0, n) with skew theta (YCSB uses theta ~ 0.99):
// rank r is drawn with probability proportional to 1 / (r+1)^theta.
// Implements the Gray et al. rejection-free inverse method YCSB uses.
class ZipfianSampler {
 public:
  ZipfianSampler(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold_;  // probability mass of the two hottest items
};

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_RNG_H_
