#include "src/base/log.h"

#include <atomic>
#include <cstdio>

#include "src/base/mutex.h"

namespace siloz {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes sink writes: pool workers log concurrently, and while fprintf
// locks the FILE per call, a mutex keeps whole messages atomic with respect
// to each other and gives TSan a clean happens-before edge on the sink.
// The guarded resource is the stderr stream itself, so there is no member
// to GUARDED_BY; every write below goes through MutexLock(SinkMutex()).
Mutex& SinkMutex() {
  static Mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  // Strip directories for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  MutexLock lock(SinkMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace siloz
