#include "src/base/rng.h"

#include <bit>
#include <cmath>
#include <numbers>
#include <vector>

#include "src/base/check.h"
#include "src/base/mutex.h"

namespace siloz {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

double Rng::NextGaussian() {
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork(uint64_t tag) {
  // Mix the tag into fresh state drawn from this stream.
  const uint64_t child_seed = NextU64() ^ (tag * 0x9E3779B97F4A7C15ull);
  return Rng(child_seed);
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

// The head sum is O(n) pow calls and dominates sampler construction; the
// experiment runners rebuild samplers for every trial from a handful of
// distinct (n, theta) pairs, so memoize it. Thetas come from workload
// literals, so keying on the exact bit pattern is the right equality.
class ZetaCache {
 public:
  double Get(uint64_t n, double theta) {
    const uint64_t bits = std::bit_cast<uint64_t>(theta);
    {
      MutexLock lock(mutex_);
      for (const Entry& entry : entries_) {
        if (entry.n == n && entry.theta_bits == bits) {
          return entry.value;
        }
      }
    }
    // Compute outside the lock; a racing duplicate computes the identical
    // value, and the recheck below keeps the cache entry unique.
    const double value = Zeta(n, theta);
    MutexLock lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.n == n && entry.theta_bits == bits) {
        return entry.value;
      }
    }
    entries_.push_back(Entry{n, bits, value});
    return value;
  }

 private:
  struct Entry {
    uint64_t n = 0;
    uint64_t theta_bits = 0;
    double value = 0.0;
  };
  Mutex mutex_;
  std::vector<Entry> entries_ GUARDED_BY(mutex_);
};

ZetaCache& GlobalZetaCache() {
  static ZetaCache* cache = new ZetaCache();  // leaked: outlives static dtors
  return *cache;
}

}  // namespace

ZipfianSampler::ZipfianSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  SILOZ_CHECK_GT(n, 0u);
  SILOZ_CHECK_GT(theta, 0.0);
  SILOZ_CHECK_LT(theta, 1.0);  // the closed form below requires theta < 1
  // Exact zeta for small n, Euler-Maclaurin-style approximation for large n
  // (the constructor must stay O(1)-ish for multi-GiB footprints).
  constexpr uint64_t kExactLimit = 100000;
  if (n <= kExactLimit) {
    zetan_ = GlobalZetaCache().Get(n, theta);
  } else {
    const double zeta_head = GlobalZetaCache().Get(kExactLimit, theta);
    // integral_{kExactLimit}^{n} x^-theta dx
    const double tail = (std::pow(static_cast<double>(n), 1.0 - theta) -
                         std::pow(static_cast<double>(kExactLimit), 1.0 - theta)) /
                        (1.0 - theta);
    zetan_ = zeta_head + tail;
  }
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
  threshold_ = 1.0 + std::pow(0.5, theta);
}

uint64_t ZipfianSampler::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < threshold_) {
    return 1;
  }
  const double rank = static_cast<double>(n_) *
                      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const auto index = static_cast<uint64_t>(rank);
  return index >= n_ ? n_ - 1 : index;
}

}  // namespace siloz
