// Statistics helpers for experiment reporting.
//
// Figures 4-7 of the paper report baseline-normalized means with 95%
// confidence intervals and geometric means across workloads; these helpers
// provide exactly those aggregations.
#ifndef SILOZ_SRC_BASE_STATS_H_
#define SILOZ_SRC_BASE_STATS_H_

#include <cstddef>
#include <vector>

namespace siloz {

// Accumulates samples; provides mean / stddev / 95% CI.
class RunningStat {
 public:
  void Add(double sample);

  // Combines another accumulator into this one (Chan et al. parallel
  // Welford). Deterministic in (this, other) — parallel phases accumulate
  // into thread-private stats and merge them in task-index order on the
  // coordinating thread, which keeps results independent of thread count
  // (never merge concurrently into a shared instance).
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample standard deviation (0 for <2 samples).
  double stddev() const;
  // Half-width of the 95% confidence interval on the mean, using Student's t
  // for small samples (two-sided, df = count-1).
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford running sum of squared deviations
  double min_ = 0.0;
  double max_ = 0.0;
};

// Geometric mean of strictly positive values.
double GeometricMean(const std::vector<double>& values);

// Two-sided Student's t critical value at 95% for the given degrees of
// freedom (table lookup with asymptotic tail).
double TCritical95(size_t degrees_of_freedom);

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_STATS_H_
