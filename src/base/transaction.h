// ReservationTransaction: a multi-step scope guard for all-or-nothing
// resource acquisition.
//
// Each step of a compound operation registers its undo action immediately
// after the step succeeds. If the operation returns early on ANY path —
// explicit error return, SILOZ_RETURN_IF_ERROR, or an exception unwinding
// through — the destructor runs the registered undos in reverse registration
// order, restoring the pre-operation state exactly. Commit() disowns the
// undos once every step has succeeded.
//
// This replaces the "one unwind lambda defined after the fallible steps"
// pattern, which silently leaks every reservation made before the lambda's
// definition point (the CreateVm bug class this repo's conservation checker
// exists to catch).
#ifndef SILOZ_SRC_BASE_TRANSACTION_H_
#define SILOZ_SRC_BASE_TRANSACTION_H_

#include <functional>
#include <utility>
#include <vector>

namespace siloz {

class ReservationTransaction {
 public:
  ReservationTransaction() = default;
  ~ReservationTransaction() { Rollback(); }

  ReservationTransaction(const ReservationTransaction&) = delete;
  ReservationTransaction& operator=(const ReservationTransaction&) = delete;

  // Registers the undo for a step that just succeeded. Undo actions must not
  // fail: they release resources this transaction provably acquired, so a
  // failure there is an accounting invariant violation (CHECK in the caller).
  void OnRollback(std::function<void()> undo) { undos_.push_back(std::move(undo)); }

  // The operation succeeded as a whole: keep every acquisition.
  void Commit() { undos_.clear(); }

  // Runs pending undos newest-first. Idempotent; also invoked by the
  // destructor, so an early `return error;` rolls back automatically.
  void Rollback() {
    while (!undos_.empty()) {
      undos_.back()();
      undos_.pop_back();
    }
  }

  size_t pending_undos() const { return undos_.size(); }

 private:
  std::vector<std::function<void()>> undos_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_TRANSACTION_H_
