// Result<T>: lightweight expected-style error handling.
//
// Recoverable failures (allocation exhaustion, policy denials, decode errors)
// return Result<T>; invariant violations use SILOZ_CHECK. No exceptions cross
// the public API.
#ifndef SILOZ_SRC_BASE_RESULT_H_
#define SILOZ_SRC_BASE_RESULT_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace siloz {

// Error taxonomy shared across subsystems. Codes are coarse; the message
// carries specifics.
enum class ErrorCode {
  kInvalidArgument,   // caller passed something structurally wrong
  kOutOfRange,        // address/index outside the modeled machine
  kNoMemory,          // allocator exhausted for the requested node/order
  kPermissionDenied,  // control-group / KVM-privilege policy rejected request
  kNotFound,          // lookup missed (node id, VM id, mapping)
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// operation invalid in current state (e.g. before boot)
  kIntegrityViolation,// EPT checksum mismatch / isolation escape detected
  kUnsupported,       // configuration the model does not implement
};

const char* ErrorCodeName(ErrorCode code);

// An error with code and human-readable context.
struct Error {
  ErrorCode code;
  std::string message;

  std::string ToString() const { return std::string(ErrorCodeName(code)) + ": " + message; }
};

inline Error MakeError(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

// Result<T> holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    SILOZ_CHECK(ok()) << error().ToString();
    return std::get<0>(data_);
  }
  T& value() & {
    SILOZ_CHECK(ok()) << error().ToString();
    return std::get<0>(data_);
  }
  T&& value() && {
    SILOZ_CHECK(ok()) << error().ToString();
    return std::get<0>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    SILOZ_CHECK(!ok());
    return std::get<1>(data_);
  }

  T value_or(T fallback) const { return ok() ? std::get<0>(data_) : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

// Result<void> specialization-equivalent for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // success
  Status(Error error) : error_(std::move(error)) {}       // NOLINT(runtime/explicit)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    SILOZ_CHECK(!ok());
    return *error_;
  }

  static Status Ok() { return Status(); }

 private:
  std::optional<Error> error_;
};

}  // namespace siloz

// Propagate an error from a Result/Status expression. Binds by reference so
// move-only Result payloads are supported.
#define SILOZ_RETURN_IF_ERROR(expr)            \
  do {                                         \
    auto&& siloz_status_ = (expr);             \
    if (!siloz_status_.ok()) {                 \
      return siloz_status_.error();            \
    }                                          \
  } while (0)

#endif  // SILOZ_SRC_BASE_RESULT_H_
