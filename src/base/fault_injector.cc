#include "src/base/fault_injector.h"

#include <cstring>

namespace siloz {

std::atomic<bool> FaultInjector::active_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(uint64_t k, std::string site_prefix) {
  MutexLock lock(mutex_);
  armed_ = true;
  k_ = k;
  matched_ = 0;
  fired_ = 0;
  prefix_ = std::move(site_prefix);
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  MutexLock lock(mutex_);
  armed_ = false;
  active_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const char* site) {
  MutexLock lock(mutex_);
  if (!armed_) {
    return false;
  }
  if (std::strncmp(site, prefix_.c_str(), prefix_.size()) != 0) {
    return false;
  }
  ++matched_;
  if (matched_ == k_ && fired_ == 0) {
    fired_ = 1;
    return true;
  }
  return false;
}

uint64_t FaultInjector::matched_calls() const {
  MutexLock lock(mutex_);
  return matched_;
}

uint64_t FaultInjector::faults_fired() const {
  MutexLock lock(mutex_);
  return fired_;
}

}  // namespace siloz
