// Work-stealing thread pool for embarrassingly-parallel simulation phases.
//
// The experiment layer (per-trial traces), the sweep grids (one config per
// task), and the auditor's blast-radius scan (one subarray-group shard per
// task) all consist of independent units of work whose *outputs* are merged
// deterministically by the caller. The pool therefore makes no ordering
// promises about execution — determinism is the caller's contract (see
// DESIGN.md §8): fork RNG streams by task index up front, give every task
// private state, and merge results in task-index order.
//
// Scheduling is work-stealing: each worker owns a deque, submissions are
// distributed round-robin, a worker drains its own deque front-first and
// steals from the back of a sibling's deque when it runs dry. Steal counts
// are surfaced through PoolMetrics so the benches can report scheduler
// behaviour alongside wall-clock speedups.
//
// A pool constructed with one worker runs every task inline on the calling
// thread — the legacy serial path, bit-identical to the parallel one by the
// determinism contract and free of thread-creation cost.
#ifndef SILOZ_SRC_BASE_THREAD_POOL_H_
#define SILOZ_SRC_BASE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/mutex.h"

namespace siloz {

// Lifetime counters of one pool, readable at any time (values are only
// stable once Wait() returned and no new work was submitted).
struct PoolMetrics {
  uint32_t workers = 1;
  uint64_t tasks = 0;   // tasks executed to completion
  uint64_t steals = 0;  // tasks a worker took from a sibling's deque
  uint64_t sleeps = 0;  // times a worker blocked waiting for work
};

// Resolves a `--threads N` style knob: N > 0 is taken literally; 0 falls
// back to $SILOZ_THREADS when set and positive, else the hardware
// concurrency (minimum 1).
uint32_t ResolveThreads(uint32_t requested);

class ThreadPool {
 public:
  // `threads` as in ResolveThreads(); the resolved count is worker_count().
  explicit ThreadPool(uint32_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t worker_count() const { return worker_count_; }

  // Enqueues one task. Tasks must not throw and must not call Wait() or
  // ParallelFor() on this pool (a worker blocking on its own pool deadlocks).
  // With one worker the task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed. Safe to call from
  // multiple external threads; each sees the pool drained.
  void Wait();

  // Runs fn(i) for every i in [begin, end) across the workers and blocks
  // until all iterations finish. Iterations are claimed dynamically, so
  // callers must not depend on execution order. Inline when serial.
  void ParallelFor(uint64_t begin, uint64_t end, const std::function<void(uint64_t)>& fn);

  PoolMetrics metrics() const;

 private:
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks GUARDED_BY(mutex);
  };

  void WorkerLoop(uint32_t self);
  // Pops from our own deque front, else steals from a sibling's back.
  std::function<void()> NextTask(uint32_t self, bool& stolen);
  void FinishTask(bool stolen);

  uint32_t worker_count_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // sync_mutex_ guards sleep/wake bookkeeping only; deques have their own
  // locks and are never touched while holding it.
  Mutex sync_mutex_;
  CondVar work_cv_;  // workers: "new work may exist"
  CondVar done_cv_;  // Wait(): "pending_ hit zero"
  uint64_t work_epoch_ GUARDED_BY(sync_mutex_) = 0;  // bumped on every submission
  bool stop_ GUARDED_BY(sync_mutex_) = false;

  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> sleeps_{0};
  std::atomic<uint32_t> next_queue_{0};
};

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_THREAD_POOL_H_
