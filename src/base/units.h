// Size and time unit helpers used throughout the Siloz reproduction.
#ifndef SILOZ_SRC_BASE_UNITS_H_
#define SILOZ_SRC_BASE_UNITS_H_

#include <cstdint>

namespace siloz {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// x86-64 page sizes relevant to the paper (§4.2).
inline constexpr uint64_t kPage4K = 4 * kKiB;
inline constexpr uint64_t kPage2M = 2 * kMiB;
inline constexpr uint64_t kPage1G = 1 * kGiB;

// Cache line granularity at which physical-to-media mappings apply (§2.4).
inline constexpr uint64_t kCacheLineBytes = 64;

// DDR4 retention window: every cell is refreshed within 64 ms (§2.3).
inline constexpr uint64_t kRefreshWindowNs = 64'000'000;
// DDR4 issues one REF command per tREFI (7.8 us) covering 1/8192 of rows.
inline constexpr uint64_t kRefreshIntervalNs = 7'800;
inline constexpr uint32_t kRefreshBins = 8192;
// JEDEC allows postponing at most 9 REF commands, so a row can stay open at
// most ~9*tREFI before the controller must precharge the bank — the bound on
// RowPress aggressor-on time.
inline constexpr uint64_t kMaxRowOpenNs = 9 * kRefreshIntervalNs;

// Literal helpers so geometry configs read like the paper ("32 GiB DIMM").
constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_UNITS_H_
