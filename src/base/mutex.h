// Annotated mutual-exclusion primitives for Clang Thread Safety Analysis.
//
// std::mutex and std::lock_guard carry no capability attributes, so code
// using them directly cannot be checked by -Wthread-safety. These thin
// wrappers add the attributes (and nothing else: Mutex is exactly a
// std::mutex, MutexLock exactly a lock_guard, CondVar a condition_variable
// that waits on a Mutex via the adopt/release idiom). Every concurrent
// subsystem in the tree uses them; see DESIGN.md §12 for the conventions.
#ifndef SILOZ_SRC_BASE_MUTEX_H_
#define SILOZ_SRC_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/base/thread_annotations.h"

namespace siloz {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis (not the runtime) that this mutex is held. Used at
  // the top of lambdas that execute while the enclosing scope holds the
  // lock — rollback closures, allocator callbacks, wait predicates — since
  // the analysis examines a lambda body with an empty lock set.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock, analysis-visible (unlike std::lock_guard<Mutex>).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable waiting on a Mutex. Wait() atomically releases the
// mutex while blocked and reacquires it before returning, exactly like
// std::condition_variable — the capability is held on entry and on exit,
// which is all the (lock-set-based) analysis needs to see.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  // Waits until pred() is true. `pred` runs with the mutex held; if it reads
  // GUARDED_BY state it should open with mu.AssertHeld().
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) {
      Wait(mu);
    }
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_MUTEX_H_
