// Divide-free unsigned division by an invariant divisor.
//
// The address decoders (src/addr) translate every simulated memory access
// through a chain of div/mod operations whose divisors are fixed at
// construction (channel counts, chunk sizes, lines per row). A 64-bit udiv
// is 20-90 cycles on current server cores; a multiply-shift is 3-5. This
// header precomputes the Granlund-Montgomery magic number for a divisor once
// and replaces each division with a 128-bit multiply plus shifts, exact for
// every 64-bit numerator (the same scheme libdivide and compilers use for
// constant divisors — here the divisor is a runtime constant, so the
// compiler cannot do it for us).
//
// Correctness is testable and tested exhaustively-ish (tests/fastdiv_test.cc)
// because quotients are integers: there is no rounding to preserve, only
// exact equality with operator/.
#ifndef SILOZ_SRC_BASE_FASTDIV_H_
#define SILOZ_SRC_BASE_FASTDIV_H_

#include <bit>
#include <cstdint>

#include "src/base/check.h"

namespace siloz {

// Precomputed reciprocal for exact unsigned 64-bit division by a fixed
// divisor. Default-constructed as division by 1 so instances can live in
// containers before initialization.
class FastDivider {
 public:
  FastDivider() : FastDivider(1) {}

  explicit FastDivider(uint64_t divisor) : divisor_(divisor) {
    SILOZ_CHECK_GT(divisor, 0ull);
    const int floor_log2 = 63 - std::countl_zero(divisor);
    shift_ = static_cast<uint8_t>(floor_log2);
    if ((divisor & (divisor - 1)) == 0) {
      // Power of two: a plain shift, no multiply.
      pow2_ = true;
      magic_ = 0;
      add_ = false;
      return;
    }
    pow2_ = false;
    // Granlund-Montgomery round-up magic: floor(2^(64+L) / d) + 1, with the
    // extra "add" fixup when the magic would need 65 bits. 64+L < 128, so the
    // 128/64 division is native.
    const unsigned __int128 numerator = static_cast<unsigned __int128>(1) << (64 + floor_log2);
    uint64_t proposed = static_cast<uint64_t>(numerator / divisor);
    const uint64_t rem = static_cast<uint64_t>(
        numerator - static_cast<unsigned __int128>(proposed) * divisor);
    const uint64_t error = divisor - rem;
    if (error < (1ull << floor_log2)) {
      add_ = false;
    } else {
      add_ = true;
      proposed += proposed;
      const uint64_t twice_rem = rem + rem;
      if (twice_rem >= divisor || twice_rem < rem) {
        ++proposed;
      }
    }
    magic_ = proposed + 1;
  }

  // Exact floor(x / divisor) for every x.
  uint64_t Divide(uint64_t x) const {
    if (pow2_) {
      return x >> shift_;
    }
    const auto q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(x) * magic_) >> 64);
    if (add_) {
      return (((x - q) >> 1) + q) >> shift_;
    }
    return q >> shift_;
  }

  // Exact x % divisor, via the quotient.
  uint64_t Mod(uint64_t x) const { return x - Divide(x) * divisor_; }

  // Quotient and remainder with one reciprocal multiply.
  uint64_t DivMod(uint64_t x, uint64_t* remainder) const {
    const uint64_t q = Divide(x);
    *remainder = x - q * divisor_;
    return q;
  }

  uint64_t divisor() const { return divisor_; }

 private:
  uint64_t magic_ = 0;
  uint64_t divisor_ = 1;
  uint8_t shift_ = 0;
  bool add_ = false;
  bool pow2_ = true;
};

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_FASTDIV_H_
