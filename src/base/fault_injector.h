// Deterministic fault injection for error-path testing.
//
// Fallible resource operations (buddy allocation, cgroup creation, EPT table
// page allocation) declare a SILOZ_FAULT_POINT("site") at their entry. When
// the process-wide injector is armed with (k, prefix), the k-th subsequent
// call whose site name starts with `prefix` fails with an injected kNoMemory
// error; every other call proceeds normally. Firing is one-shot per Arm(), so
// rollback/cleanup code that runs *because* of the injected failure is never
// itself sabotaged.
//
// Site names are namespaced by failure class:
//   "alloc.*"  acquisition paths (allocation, creation, reservation) — the
//              set the CreateVm fault sweep iterates over,
//   "free.*"   release paths (used to exercise DestroyVm retry semantics;
//              never part of an "alloc." sweep, because transactional
//              rollback treats release failure as an invariant violation).
//
// The disarmed fast path is a single relaxed atomic load, so instrumented
// sites cost nothing measurable in production runs. Armed bookkeeping takes a
// mutex; fault injection is a single-threaded test harness feature and makes
// no cross-thread ordering promises beyond data-race freedom.
#ifndef SILOZ_SRC_BASE_FAULT_INJECTOR_H_
#define SILOZ_SRC_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/mutex.h"
#include "src/base/result.h"

namespace siloz {

class FaultInjector {
 public:
  // The process-wide injector every SILOZ_FAULT_POINT consults.
  static FaultInjector& Global();

  // Arms the injector: the k-th (1-based) subsequent matching call fails.
  // Resets the matched/fired counters. An empty prefix matches every site.
  void Arm(uint64_t k, std::string site_prefix = "");

  // Disarms and stops counting. Counters keep their values until re-Arm.
  void Disarm();

  // Consulted by SILOZ_FAULT_POINT. Counts calls matching the armed prefix;
  // returns true exactly once, on the k-th match since Arm().
  bool ShouldFail(const char* site);

  // Matching calls observed since the last Arm() (the sweep uses this to
  // discover how many fault points a code path traverses).
  uint64_t matched_calls() const;
  // 0 or 1: whether the armed fault has fired since the last Arm().
  uint64_t faults_fired() const;

  // Disarmed fast path: false for the lifetime of any process that never
  // arms the injector.
  static bool Active() { return active_.load(std::memory_order_relaxed); }

 private:
  static std::atomic<bool> active_;

  mutable Mutex mutex_;
  bool armed_ GUARDED_BY(mutex_) = false;
  uint64_t k_ GUARDED_BY(mutex_) = 0;
  uint64_t matched_ GUARDED_BY(mutex_) = 0;
  uint64_t fired_ GUARDED_BY(mutex_) = 0;
  std::string prefix_ GUARDED_BY(mutex_);
};

// RAII arm/disarm for tests: the injector never stays armed past a scope,
// even when an ASSERT unwinds it.
class ScopedFault {
 public:
  explicit ScopedFault(uint64_t k, std::string site_prefix = "") {
    FaultInjector::Global().Arm(k, std::move(site_prefix));
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace siloz

// Declares an injectable failure site in a function returning Result/Status.
#define SILOZ_FAULT_POINT(site)                                             \
  do {                                                                      \
    if (::siloz::FaultInjector::Active() &&                                 \
        ::siloz::FaultInjector::Global().ShouldFail(site)) {                \
      return ::siloz::MakeError(::siloz::ErrorCode::kNoMemory,              \
                                std::string("injected fault at ") + (site)); \
    }                                                                       \
  } while (0)

#endif  // SILOZ_SRC_BASE_FAULT_INJECTOR_H_
