#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace siloz {

void RunningStat::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::mean() const { return mean_; }

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double RunningStat::ci95_halfwidth() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double sem = stddev() / std::sqrt(static_cast<double>(count_));
  return TCritical95(count_ - 1) * sem;
}

double GeometricMean(const std::vector<double>& values) {
  SILOZ_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    SILOZ_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double TCritical95(size_t degrees_of_freedom) {
  // Standard two-sided 95% t table; beyond df=30 the normal quantile 1.96 is
  // within 2% and is used directly.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
      2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (degrees_of_freedom == 0) {
    return 0.0;
  }
  if (degrees_of_freedom <= 30) {
    return kTable[degrees_of_freedom];
  }
  return 1.96;
}

}  // namespace siloz
