// CHECK/DCHECK invariant macros.
//
// Library code uses Result<T> for recoverable errors (see result.h) and CHECK
// for programmer errors / broken invariants, which abort with a location and
// message. DCHECK compiles out of release builds.
#ifndef SILOZ_SRC_BASE_CHECK_H_
#define SILOZ_SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace siloz {

[[noreturn]] inline void CheckFailure(const char* file, int line, const char* expr,
                                      const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream sink that aborts on destruction; enables `CHECK(x) << "detail"`.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFailure(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace siloz

// `while` (not `if`) avoids dangling-else pitfalls; the CheckMessage
// destructor aborts, so the loop body runs at most once.
#define SILOZ_CHECK(expr)                  \
  while (__builtin_expect(!(expr), 0))     \
  ::siloz::CheckMessage(__FILE__, __LINE__, #expr)

#define SILOZ_CHECK_EQ(a, b) SILOZ_CHECK((a) == (b))
#define SILOZ_CHECK_NE(a, b) SILOZ_CHECK((a) != (b))
#define SILOZ_CHECK_LT(a, b) SILOZ_CHECK((a) < (b))
#define SILOZ_CHECK_LE(a, b) SILOZ_CHECK((a) <= (b))
#define SILOZ_CHECK_GT(a, b) SILOZ_CHECK((a) > (b))
#define SILOZ_CHECK_GE(a, b) SILOZ_CHECK((a) >= (b))

#ifdef NDEBUG
#define SILOZ_DCHECK(expr) (void)0
#else
#define SILOZ_DCHECK(expr) SILOZ_CHECK(expr)
#endif

#endif  // SILOZ_SRC_BASE_CHECK_H_
