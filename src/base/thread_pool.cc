#include "src/base/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace siloz {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("SILOZ_THREADS"); env != nullptr && env[0] != '\0') {
    const unsigned long value = std::strtoul(env, nullptr, 10);
    if (value > 0) {
      return static_cast<uint32_t>(value);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(uint32_t threads) : worker_count_(ResolveThreads(threads)) {
  if (worker_count_ == 1) {
    return;  // serial pool: tasks run inline, no queues or threads
  }
  queues_.reserve(worker_count_);
  for (uint32_t i = 0; i < worker_count_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(worker_count_);
  for (uint32_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (!workers_.empty()) {
    Wait();
    {
      MutexLock lock(sync_mutex_);
      stop_ = true;
    }
    work_cv_.NotifyAll();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
  // Flush lifetime totals into the global registry now that the pool is
  // quiescent. All three counters describe how the host scheduled the run,
  // not what the simulated machine did: callers pick their work
  // decomposition based on the thread budget (the sharded engine serves
  // fused with no pool at all when threads <= 1), so even the task count is
  // scheduler telemetry and stays out of the model-domain census that the
  // §8 determinism contract holds thread-count-invariant.
  const PoolMetrics totals = metrics();
  if (totals.tasks > 0) {
    obs::Registry::Global().GetCounter("pool.tasks", obs::Domain::kSched).Add(totals.tasks);
  }
  if (totals.steals > 0) {
    obs::Registry::Global().GetCounter("pool.steals", obs::Domain::kSched).Add(totals.steals);
  }
  if (totals.sleeps > 0) {
    obs::Registry::Global().GetCounter("pool.sleeps", obs::Domain::kSched).Add(totals.sleeps);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SILOZ_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint32_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % static_cast<uint32_t>(queues_.size());
  pending_.fetch_add(1, std::memory_order_release);
  {
    MutexLock lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    MutexLock lock(sync_mutex_);
    ++work_epoch_;
  }
  work_cv_.NotifyOne();
}

std::function<void()> ThreadPool::NextTask(uint32_t self, bool& stolen) {
  stolen = false;
  {
    WorkerQueue& own = *queues_[self];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return task;
    }
  }
  const uint32_t n = static_cast<uint32_t>(queues_.size());
  for (uint32_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      stolen = true;
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::FinishTask(bool stolen) {
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(sync_mutex_);
    done_cv_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop(uint32_t self) {
  for (;;) {
    // Snapshot the epoch BEFORE scanning the deques: any submission that
    // the scan misses bumps the epoch past the snapshot, so the wait below
    // returns immediately instead of sleeping through the notification.
    uint64_t epoch = 0;
    {
      MutexLock lock(sync_mutex_);
      if (stop_) {
        return;
      }
      epoch = work_epoch_;
    }
    bool stolen = false;
    if (std::function<void()> task = NextTask(self, stolen); task != nullptr) {
      task();
      FinishTask(stolen);
      continue;
    }
    MutexLock lock(sync_mutex_);
    if (!stop_ && work_epoch_ == epoch) {
      sleeps_.fetch_add(1, std::memory_order_relaxed);  // about to actually block
    }
    work_cv_.Wait(sync_mutex_, [&] {
      sync_mutex_.AssertHeld();  // predicate runs with the wait mutex held
      return stop_ || work_epoch_ != epoch;
    });
    if (stop_) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;
  }
  MutexLock lock(sync_mutex_);
  done_cv_.Wait(sync_mutex_, [&] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end,
                             const std::function<void(uint64_t)>& fn) {
  if (end <= begin) {
    return;
  }
  if (workers_.empty()) {
    for (uint64_t i = begin; i < end; ++i) {
      fn(i);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // One task per iteration: round-robin submission spreads the range over
  // the deques and idle workers steal the imbalance, so uneven iteration
  // costs self-balance and the `tasks` metric counts iterations on both
  // the serial and the parallel path.
  for (uint64_t i = begin; i < end; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

PoolMetrics ThreadPool::metrics() const {
  PoolMetrics metrics;
  metrics.workers = worker_count_;
  metrics.tasks = tasks_run_.load(std::memory_order_relaxed);
  metrics.steals = steals_.load(std::memory_order_relaxed);
  metrics.sleeps = sleeps_.load(std::memory_order_relaxed);
  return metrics;
}

}  // namespace siloz
