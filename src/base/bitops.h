// Bit-field helpers for address decoding and the DDR4 remap transforms.
#ifndef SILOZ_SRC_BASE_BITOPS_H_
#define SILOZ_SRC_BASE_BITOPS_H_

#include <cstdint>

namespace siloz {

// Value of bit `pos` of `v` (0 = LSB).
constexpr uint64_t GetBit(uint64_t v, unsigned pos) { return (v >> pos) & 1ull; }

// `v` with bit `pos` set to `bit` (bit must be 0 or 1).
constexpr uint64_t SetBit(uint64_t v, unsigned pos, uint64_t bit) {
  return (v & ~(1ull << pos)) | ((bit & 1ull) << pos);
}

// Extract bits [lo, hi] inclusive of `v`, right-aligned.
constexpr uint64_t GetBits(uint64_t v, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  const uint64_t mask = (width >= 64) ? ~0ull : ((1ull << width) - 1);
  return (v >> lo) & mask;
}

// Swap bits `a` and `b` of `v` (DDR4 address mirroring swaps bit pairs, §6).
constexpr uint64_t SwapBits(uint64_t v, unsigned a, unsigned b) {
  const uint64_t bit_a = GetBit(v, a);
  const uint64_t bit_b = GetBit(v, b);
  return SetBit(SetBit(v, a, bit_b), b, bit_a);
}

// XOR bit `pos` with `bit`.
constexpr uint64_t XorBit(uint64_t v, unsigned pos, uint64_t bit) {
  return v ^ ((bit & 1ull) << pos);
}

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Round `v` up to the next power of two (v must be nonzero and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Integer log2 of a power of two.
constexpr unsigned Log2(uint64_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

// Round `v` up/down to a multiple of `align` (align nonzero).
constexpr uint64_t AlignDown(uint64_t v, uint64_t align) { return v - (v % align); }
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return AlignDown(v + align - 1, align);
}

}  // namespace siloz

#endif  // SILOZ_SRC_BASE_BITOPS_H_
