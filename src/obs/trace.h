// Scoped tracing with Chrome trace-event JSON export.
//
// TraceSpan is an RAII marker: construct at the top of a phase, and its
// destructor records one complete ("ph":"X") event with the measured wall
// duration. The global Tracer starts disabled — a span on a disabled tracer
// costs one relaxed atomic load and touches no clock — and is switched on by
// the CLI `--trace-out` flags.
//
// Export is the Trace Event Format's JSON-object form,
//   {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
//                    "pid":1,"tid":...},...]},
// which chrome://tracing and Perfetto load directly. Timestamps are
// microseconds since the tracer was created (or last Reset). Traces measure
// the host, so they are *not* part of the determinism contract — only
// metric values are (DESIGN.md §9).
#ifndef SILOZ_SRC_OBS_TRACE_H_
#define SILOZ_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/mutex.h"

namespace siloz::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t tid = 0;
};

class Tracer {
 public:
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Records one complete event (no-op while disabled).
  void RecordSpan(const std::string& name, const std::string& category, uint64_t start_us,
                  uint64_t duration_us);

  // Microseconds since construction / last Reset.
  uint64_t NowMicros() const;

  size_t event_count() const;
  // Chrome trace-event JSON document (see file comment).
  std::string ToJson() const;
  // Drops recorded events and restarts the clock; enabled-state unchanged.
  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  // steady_clock time_since_epoch in ns; atomic so Reset() cannot race a
  // concurrent span's clock read.
  std::atomic<int64_t> epoch_ns_{0};
};

// RAII span against the global tracer. When the tracer is disabled at
// construction the span is inert (its end is not recorded even if tracing
// is enabled mid-span, keeping every recorded event well-formed).
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string category = "siloz");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
  bool active_ = false;
};

// Serializes Tracer::Global() to `path`. Returns false (with a message on
// stderr) if the file cannot be written.
bool WriteTraceJson(const std::string& path);

}  // namespace siloz::obs

#endif  // SILOZ_SRC_OBS_TRACE_H_
