#include "src/obs/trace.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace siloz::obs {
namespace {

// Small dense thread ids for the "tid" field (std::thread::id is opaque).
uint32_t ThreadTraceId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendEscaped(std::ostringstream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static dtors
  return *tracer;
}

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer() { epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed); }

uint64_t Tracer::NowMicros() const {
  const int64_t delta = SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
  return delta <= 0 ? 0 : static_cast<uint64_t>(delta) / 1000;
}

void Tracer::RecordSpan(const std::string& name, const std::string& category, uint64_t start_us,
                        uint64_t duration_us) {
  if (!enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.tid = ThreadTraceId();
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::string Tracer::ToJson() const {
  MutexLock lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& event = events_[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"name\":\"";
    AppendEscaped(out, event.name);
    out << "\",\"cat\":\"";
    AppendEscaped(out, event.category);
    out << "\",\"ph\":\"X\",\"ts\":" << event.start_us << ",\"dur\":" << event.duration_us
        << ",\"pid\":1,\"tid\":" << event.tid << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

void Tracer::Reset() {
  MutexLock lock(mutex_);
  events_.clear();
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

TraceSpan::TraceSpan(std::string name, std::string category)
    : name_(std::move(name)), category_(std::move(category)) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) {
    return;
  }
  active_ = true;
  start_us_ = tracer.NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  Tracer& tracer = Tracer::Global();
  const uint64_t end_us = tracer.NowMicros();
  tracer.RecordSpan(name_, category_, start_us_, end_us - start_us_);
}

bool WriteTraceJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "trace: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const std::string json = Tracer::Global().ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size() &&
                  std::fputc('\n', file) != EOF;
  std::fclose(file);
  if (!ok) {
    std::fprintf(stderr, "trace: short write to '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace siloz::obs
