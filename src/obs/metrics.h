// Process-wide metrics registry: named counters, gauges, and log2-bucketed
// histograms, lock-free on the hot path and deterministic at snapshot time.
//
// Hot-path writes go to one of a fixed set of cache-line-padded atomic
// shards selected by a thread-local index, so concurrent writers never
// contend on a line. Snapshots sum the shards in shard-index order; integer
// addition commutes, so a quiescent snapshot's totals depend only on *what*
// was counted, never on which thread counted it or in what order — the
// property that lets metric values join the determinism contract
// (DESIGN.md §8/§9): model-domain metrics are bit-identical for every
// `--threads N`.
//
// Two metric domains keep that contract honest:
//  - Domain::kModel: facts about the simulated system (DRAM commands,
//    allocations, flips). Thread-count-invariant by construction; the
//    determinism tests and the CI diff compare only this section.
//  - Domain::kSched: facts about the host execution (steals, sleeps,
//    worker counts). Legitimately vary run to run; excluded from diffs.
//
// Handles returned by Registry::Get* are stable for the registry's lifetime:
// Reset() zeroes every value but never destroys a metric, so callers may
// cache references (e.g. in function-local statics).
//
// This library sits below src/base (the thread pool reports into it), so it
// depends only on the standard library and the header-only check macros.
#ifndef SILOZ_SRC_OBS_METRICS_H_
#define SILOZ_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/mutex.h"

namespace siloz::obs {

enum class Domain : uint8_t {
  kModel = 0,  // deterministic simulated-system facts
  kSched = 1,  // host scheduler behaviour, excluded from determinism diffs
};

const char* DomainName(Domain domain);

// Number of write shards per metric. A power of two so the thread-local
// shard index reduces with a mask; 16 covers typical core counts without
// bloating per-metric memory.
inline constexpr size_t kMetricShards = 16;

// Stable per-thread shard index in [0, kMetricShards).
size_t ThreadShardIndex();

namespace internal {
// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

// Monotonic event count. Add() is a single relaxed fetch_add on the calling
// thread's shard.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[ThreadShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Sum over shards in shard-index order. Exact once writers are quiescent.
  uint64_t Value() const;
  void Reset();

 private:
  std::array<internal::CounterShard, kMetricShards> shards_;
};

// Last-writer-wins signed level (pool sizes, free-page counts).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed distribution of uint64 samples. Bucket 0 holds the value 0;
// bucket i >= 1 holds [2^(i-1), 2^i). 65 buckets cover the full range.
inline constexpr size_t kHistogramBuckets = 65;

size_t HistogramBucketIndex(uint64_t value);
// Inclusive lower bound of a bucket (0 for bucket 0, else 2^(i-1)).
uint64_t HistogramBucketLowerBound(size_t bucket);

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};
};

// Percentile estimate from a log2-bucketed snapshot; `quantile` in [0, 1]
// (clamped). The sample ranked ceil(quantile * count) in sorted order lands
// in some bucket; the estimate is that bucket's inclusive lower bound —
// exact for the zero bucket, within 2x elsewhere, which is the resolution a
// log2 layout affords. Returns 0 for an empty histogram. The fleet
// tail-latency report extracts p50/p99/p999 through this.
uint64_t HistogramPercentile(const HistogramSnapshot& snapshot, double quantile);

class Histogram {
 public:
  void Observe(uint64_t value) {
    Shard& shard = shards_[ThreadShardIndex()];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.buckets[HistogramBucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  // Merged over shards in shard-index order.
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Named metric store. Registration (Get*) takes a mutex — do it once and
// cache the reference; updates through the returned handles are lock-free.
class Registry {
 public:
  // The process-wide registry every instrumented component reports into.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns the metric named `name`, creating it on first use. A name is
  // bound to one kind and one domain for the registry's lifetime;
  // re-requesting with a different domain is a programmer error (CHECK).
  Counter& GetCounter(const std::string& name, Domain domain = Domain::kModel);
  Gauge& GetGauge(const std::string& name, Domain domain = Domain::kModel);
  Histogram& GetHistogram(const std::string& name, Domain domain = Domain::kModel);

  // Zeroes every value. Metrics (and handles to them) survive.
  void Reset();

  // Full document: {"schema":1,"model":{...},"sched":{...}}. Names sorted,
  // integers only — byte-stable given equal values.
  std::string ToJson() const;
  // One domain's section alone: {"counters":{...},"gauges":{...},
  // "histograms":{...}}. The determinism tests and the CI metrics diff
  // compare SectionJson(Domain::kModel).
  std::string SectionJson(Domain domain) const;

 private:
  template <typename T>
  struct Entry {
    Domain domain = Domain::kModel;
    std::unique_ptr<T> metric;
  };

  mutable Mutex mutex_;
  // std::map: iteration is name-sorted, which makes serialization order (and
  // the golden-tested schema) deterministic for free. The mutex guards the
  // map structure (registration, serialization walks); the metric objects
  // pointed to are lock-free and updated outside it.
  std::map<std::string, Entry<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, Entry<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, Entry<Histogram>> histograms_ GUARDED_BY(mutex_);
};

// Shard-local metric staging for fan-out phases (DESIGN.md §13).
//
// A worker task counts into a private ShardMetrics — plain integers, no
// atomics, no registration mutex — and the coordinator folds every shard's
// buffer into the registry *after* the barrier, in fixed shard order. The
// folded values are sums, so they are thread-count-invariant either way;
// what the staged fold adds is (a) a deterministic registration order for
// names first created by worker tasks, and (b) zero registry traffic from
// the hot loops. Entries keep first-touch order; with the shard's metric
// set small (a handful of names), the linear probe beats a map.
class ShardMetrics {
 public:
  void Add(const std::string& name, uint64_t delta, Domain domain = Domain::kModel);

  // Applies every staged delta to `registry` in first-touch order. Call from
  // one thread per fold (the coordinator's merge loop).
  void FoldInto(Registry& registry) const;

 private:
  struct Entry {
    std::string name;
    Domain domain = Domain::kModel;
    uint64_t value = 0;
  };
  std::vector<Entry> entries_;
};

// Serializes Registry::Global() to `path`. Returns false (with a message on
// stderr) if the file cannot be written.
bool WriteMetricsJson(const std::string& path);

}  // namespace siloz::obs

#endif  // SILOZ_SRC_OBS_METRICS_H_
