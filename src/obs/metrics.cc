#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/base/check.h"

namespace siloz::obs {

const char* DomainName(Domain domain) {
  return domain == Domain::kModel ? "model" : "sched";
}

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return index;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::CounterShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CounterShard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

size_t HistogramBucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t HistogramBucketLowerBound(size_t bucket) {
  return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
}

uint64_t HistogramPercentile(const HistogramSnapshot& snapshot, double quantile) {
  if (snapshot.count == 0) {
    return 0;
  }
  if (quantile < 0.0) {
    quantile = 0.0;
  } else if (quantile > 1.0) {
    quantile = 1.0;
  }
  // 1-based rank of the requested sample. ceil() keeps the convention that
  // p100 of n samples is the n-th and p0 is the 1st; the min/max clamps
  // absorb floating-point slop at the ends.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(quantile * static_cast<double>(snapshot.count)));
  rank = std::max<uint64_t>(1, std::min(rank, snapshot.count));
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += snapshot.buckets[b];
    if (seen >= rank) {
      return HistogramBucketLowerBound(b);
    }
  }
  return HistogramBucketLowerBound(kHistogramBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const Shard& shard : shards_) {
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      snapshot.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    for (std::atomic<uint64_t>& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives static dtors
  return *registry;
}

namespace {

template <typename Map, typename T>
T& GetOrCreate(Map& map, const std::string& name, Domain domain) {
  auto [it, inserted] = map.try_emplace(name);
  if (inserted) {
    it->second.domain = domain;
    it->second.metric = std::make_unique<T>();
  } else {
    SILOZ_CHECK(it->second.domain == domain)
        << "metric '" << name << "' re-registered in domain " << DomainName(domain)
        << ", first registered in " << DomainName(it->second.domain);
  }
  return *it->second.metric;
}

// Minimal JSON string escaping; metric names are code-controlled but the
// serializer must never emit an invalid document.
void AppendEscaped(std::ostringstream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

void AppendHistogram(std::ostringstream& out, const HistogramSnapshot& snapshot) {
  out << "{\"count\":" << snapshot.count << ",\"sum\":" << snapshot.sum << ",\"buckets\":[";
  bool first = true;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (snapshot.buckets[b] == 0) {
      continue;  // sparse: empty buckets carry no information
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "[" << HistogramBucketLowerBound(b) << "," << snapshot.buckets[b] << "]";
  }
  out << "]}";
}

}  // namespace

Counter& Registry::GetCounter(const std::string& name, Domain domain) {
  MutexLock lock(mutex_);
  return GetOrCreate<decltype(counters_), Counter>(counters_, name, domain);
}

Gauge& Registry::GetGauge(const std::string& name, Domain domain) {
  MutexLock lock(mutex_);
  return GetOrCreate<decltype(gauges_), Gauge>(gauges_, name, domain);
}

Histogram& Registry::GetHistogram(const std::string& name, Domain domain) {
  MutexLock lock(mutex_);
  return GetOrCreate<decltype(histograms_), Histogram>(histograms_, name, domain);
}

void Registry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, entry] : counters_) {
    entry.metric->Reset();
  }
  for (auto& [name, entry] : gauges_) {
    entry.metric->Reset();
  }
  for (auto& [name, entry] : histograms_) {
    entry.metric->Reset();
  }
}

std::string Registry::SectionJson(Domain domain) const {
  MutexLock lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (entry.domain != domain) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"";
    AppendEscaped(out, name);
    out << "\":" << entry.metric->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    if (entry.domain != domain) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"";
    AppendEscaped(out, name);
    out << "\":" << entry.metric->Value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    if (entry.domain != domain) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"";
    AppendEscaped(out, name);
    out << "\":";
    AppendHistogram(out, entry.metric->Snapshot());
  }
  out << "}}";
  return out.str();
}

std::string Registry::ToJson() const {
  std::ostringstream out;
  out << "{\"schema\":1,\"model\":" << SectionJson(Domain::kModel)
      << ",\"sched\":" << SectionJson(Domain::kSched) << "}";
  return out.str();
}

void ShardMetrics::Add(const std::string& name, uint64_t delta, Domain domain) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      SILOZ_CHECK(entry.domain == domain) << "domain mismatch for staged metric " << name;
      entry.value += delta;
      return;
    }
  }
  entries_.push_back(Entry{name, domain, delta});
}

void ShardMetrics::FoldInto(Registry& registry) const {
  for (const Entry& entry : entries_) {
    if (entry.value > 0) {
      registry.GetCounter(entry.name, entry.domain).Add(entry.value);
    }
  }
}

bool WriteMetricsJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "metrics: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const std::string json = Registry::Global().ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size() &&
                  std::fputc('\n', file) != EOF;
  std::fclose(file);
  if (!ok) {
    std::fprintf(stderr, "metrics: short write to '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace siloz::obs
