// Addressing explorer: walk one physical address through every translation
// layer the paper describes — physical -> media (§2.4), media -> internal
// per rank/side (§6), and media -> subarray group (§4) — and show how a
// 2 MiB page spreads over the socket's banks while staying in one group.
//
// Run: ./build/examples/addressing_explorer [phys_address]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "src/addr/decoder.h"
#include "src/addr/subarray_group.h"
#include "src/base/bitops.h"
#include "src/base/units.h"
#include "src/dram/remap.h"

using namespace siloz;

int main(int argc, char** argv) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, geometry.rows_per_subarray);
  RowRemapper remapper(geometry, RemapConfig{});

  uint64_t phys = 5_GiB + 123 * kPage2M + 0x4bc0;  // an arbitrary default
  if (argc > 1) {
    phys = std::strtoull(argv[1], nullptr, 0);
  }
  if (phys >= geometry.total_bytes()) {
    std::fprintf(stderr, "address beyond %lu GiB of DRAM\n",
                 static_cast<unsigned long>(geometry.total_bytes() >> 30));
    return 1;
  }

  std::printf("Platform: %s\n\n", geometry.ToString().c_str());

  // Layer 1: physical -> media (the memory controller's fixed mapping).
  const MediaAddress media = *decoder.PhysToMedia(phys);
  std::printf("phys 0x%012lx\n", static_cast<unsigned long>(phys));
  std::printf("  -> media   %s\n", media.ToString().c_str());
  std::printf("     (socket %u, channel %u, DIMM %u, rank %u, bank %u, row %u, col %u)\n",
              media.socket, media.channel, media.dimm, media.rank, media.bank, media.row,
              media.column);

  // Layer 2: media row -> internal rows, per half-row side (§6).
  std::printf("  -> internal rows (DDR4 mirroring%s + inversion):\n",
              media.rank % 2 == 1 ? " [odd rank: active]" : " [even rank: identity]");
  for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
    const uint32_t internal = remapper.ToInternal(media.row, media.rank, media.bank, side);
    std::printf("     side %s: internal row %6u (silicon subarray %3u)\n", HalfRowSideName(side),
                internal, internal / geometry.rows_per_subarray);
  }

  // Layer 3: subarray group (§4).
  const uint32_t group = *map.GroupOfPhys(phys);
  const PhysRange extent = map.RangesOf(group)[0];
  std::printf("  -> subarray group %u (socket %u, subarray %u of every bank)\n", group,
              map.SocketOfGroup(group), map.IndexInCluster(group));
  std::printf("     extent: phys [0x%012lx, 0x%012lx) = %lu MiB\n",
              static_cast<unsigned long>(extent.begin), static_cast<unsigned long>(extent.end),
              static_cast<unsigned long>(extent.size() >> 20));

  // The §4.2 property: the enclosing 2 MiB page touches every bank of the
  // socket yet stays inside this one group.
  const uint64_t page = AlignDown(phys, kPage2M);
  std::set<uint32_t> banks;
  std::set<uint32_t> groups;
  std::set<uint32_t> rows;
  for (uint64_t offset = 0; offset < kPage2M; offset += kCacheLineBytes) {
    const MediaAddress line = *decoder.PhysToMedia(page + offset);
    banks.insert(SocketBankIndex(geometry, line));
    groups.insert(*map.GroupOfPhys(page + offset));
    rows.insert(line.row);
  }
  std::printf("\nEnclosing 2 MiB page at 0x%012lx:\n", static_cast<unsigned long>(page));
  std::printf("  touches %zu of %u banks, %zu distinct rows, %zu subarray group(s)\n",
              banks.size(), geometry.banks_per_socket(), rows.size(), groups.size());
  std::printf("  => full bank-level parallelism, single isolation domain (§4)\n");

  // Bonus: the neighbouring rows an aggressor at this address could disturb.
  std::printf("\nRowhammer blast radius from media row %u (same bank, same subarray):\n",
              media.row);
  for (int64_t delta = -2; delta <= 2; ++delta) {
    if (delta == 0) {
      continue;
    }
    const int64_t victim = static_cast<int64_t>(media.row) + delta;
    if (victim < 0 || victim >= geometry.rows_per_bank) {
      continue;
    }
    const bool same = static_cast<uint32_t>(victim) / geometry.rows_per_subarray ==
                      media.row / geometry.rows_per_subarray;
    MediaAddress victim_media = media;
    victim_media.row = static_cast<uint32_t>(victim);
    victim_media.column = 0;
    std::printf("  row %+ld -> phys 0x%012lx  %s\n", static_cast<long>(delta),
                static_cast<unsigned long>(*decoder.MediaToPhys(victim_media)),
                same ? "VULNERABLE (same subarray)" : "isolated (different subarray)");
  }
  return 0;
}
