// Multi-tenant attack scenario: a malicious VM runs a Blacksmith-grade
// Rowhammer campaign against a co-located victim, once on the unmodified
// Linux/KVM baseline and once under Siloz — the paper's motivating story
// played end to end through the simulator.
//
// Run: ./build/examples/multi_tenant_attack
#include <cstdio>
#include <vector>

#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

using namespace siloz;

namespace {

MachineConfig FaultMachine() {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;  // scaled threshold: fast demo
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = true;  // deployed mitigations stay on; the fuzzer
  profile.trr.act_threshold = 400;  // must defeat them, as on real DIMMs
  config.dimm_profiles = {profile};
  return config;
}

struct ScenarioResult {
  uint64_t flips_total = 0;
  uint64_t flips_in_victim = 0;
  bool ept_intact = true;
};

ScenarioResult RunScenario(bool siloz_enabled) {
  Machine machine(FaultMachine());
  SilozConfig config;
  config.enabled = siloz_enabled;
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
  SILOZ_CHECK(hypervisor.Boot().ok());

  // 2 GiB VMs: on the baseline, contiguous placement puts the tenant
  // boundary mid-subarray; under Siloz each VM gets whole groups.
  const VmId attacker = *hypervisor.CreateVm({.name = "attacker", .memory_bytes = 2_GiB});
  const VmId victim = *hypervisor.CreateVm({.name = "victim", .memory_bytes = 2_GiB});
  Vm& attacker_vm = **hypervisor.GetVm(attacker);
  Vm& victim_vm = **hypervisor.GetVm(victim);

  // The attacker can only touch memory its EPT maps: its own regions.
  std::vector<PhysRange> reachable;
  for (const VmRegion& region : attacker_vm.regions()) {
    reachable.push_back(PhysRange{region.hpa, region.hpa + region.bytes});
  }

  BlacksmithConfig fuzz;
  fuzz.patterns = 16;
  fuzz.rounds = 1500;
  fuzz.min_pairs = 8;
  fuzz.max_pairs = 16;
  FuzzReport report = BlacksmithFuzzer(fuzz).Run(machine, reachable);

  // A targeted follow-up, Flip-Feng-Shui style: the attacker knows its
  // memory is physically contiguous and hammers its own edge rows, whose
  // neighbours belong to whoever is placed next. (Under Siloz the "edge" is
  // a subarray-group boundary: electrically isolated.)
  const VmRegion& last = attacker_vm.regions().back();
  const uint64_t edge_phys = last.hpa + last.bytes - kCacheLineBytes;
  const MediaAddress edge = *machine.decoder().PhysToMedia(edge_phys);
  std::vector<uint64_t> targeted = {edge_phys};
  // Decoy rows (all the attacker's own) flush the TRR tracker while the
  // edge row hammers single-sided across the tenant boundary.
  for (uint32_t i = 0; i < 13; ++i) {
    MediaAddress decoy = edge;
    decoy.row = edge.row - 16 - i * 8;
    targeted.push_back(*machine.decoder().MediaToPhys(decoy));
  }
  HammerPhysAddresses(machine, {targeted.data(), targeted.size()}, 15000);
  std::vector<PhysFlip> targeted_flips = machine.DrainFlips();
  report.flips.insert(report.flips.end(), targeted_flips.begin(), targeted_flips.end());

  ScenarioResult result;
  result.flips_total = report.flips.size();
  for (const PhysFlip& flip : report.flips) {
    for (const VmRegion& region : victim_vm.regions()) {
      if (flip.phys >= region.hpa && flip.phys < region.hpa + region.bytes) {
        ++result.flips_in_victim;
      }
    }
  }
  result.ept_intact = hypervisor.AuditVmIsolation(attacker).ok() &&
                      hypervisor.AuditVmIsolation(victim).ok();
  return result;
}

}  // namespace

int main() {
  std::printf("Two tenants, same socket. 'attacker' runs a TRR-bypassing\n"
              "Rowhammer fuzzer against everything it can reach.\n\n");

  std::printf("%-22s | %12s | %16s | %10s\n", "kernel", "total flips", "flips in victim",
              "EPTs OK?");
  std::printf("--------------------------------------------------------------------\n");
  const ScenarioResult baseline = RunScenario(/*siloz_enabled=*/false);
  std::printf("%-22s | %12lu | %16lu | %10s\n", "baseline Linux/KVM",
              static_cast<unsigned long>(baseline.flips_total),
              static_cast<unsigned long>(baseline.flips_in_victim),
              baseline.ept_intact ? "yes" : "CORRUPTED");
  const ScenarioResult siloz = RunScenario(/*siloz_enabled=*/true);
  std::printf("%-22s | %12lu | %16lu | %10s\n", "Siloz",
              static_cast<unsigned long>(siloz.flips_total),
              static_cast<unsigned long>(siloz.flips_in_victim),
              siloz.ept_intact ? "yes" : "CORRUPTED");
  std::printf("--------------------------------------------------------------------\n\n");

  if (siloz.flips_in_victim == 0 && siloz.ept_intact) {
    std::printf("Siloz: the attacker still flips bits — but only in its own\n"
                "subarray groups. The victim and all EPTs are untouched.\n");
  } else {
    std::printf("UNEXPECTED: Siloz failed to contain the attack.\n");
    return 1;
  }
  if (baseline.flips_in_victim > 0) {
    std::printf("Baseline: %lu bit flips landed inside the victim's memory.\n",
                static_cast<unsigned long>(baseline.flips_in_victim));
  } else {
    std::printf("Baseline: no victim flips this run (placement luck) — the\n"
                "attacker still flipped %lu bits in co-located rows; see\n"
                "bench_baseline_vulnerable for the deterministic boundary attack.\n",
                static_cast<unsigned long>(baseline.flips_total));
  }
  return 0;
}
