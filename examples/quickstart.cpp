// Quickstart: boot Siloz, inspect the logical NUMA topology it builds,
// create a VM, and audit its isolation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

using namespace siloz;

int main() {
  // 1. The platform: the paper's evaluation server (Table 2) — dual-socket
  //    Skylake, 192 banks and 192 GiB per socket, 1024-row subarrays.
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  std::printf("Platform: %s\n\n", geometry.ToString().c_str());

  // 2. Boot the Siloz hypervisor. At boot it derives subarray groups from
  //    the physical-to-media decoder, turns each group into a logical NUMA
  //    node, and reserves the guard-protected EPT block (§5.3-§5.4).
  FlatPhysMemory memory;  // performance-mode byte store
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  if (Status status = hypervisor.Boot(); !status.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", status.error().ToString().c_str());
    return 1;
  }

  std::printf("Logical NUMA topology (%zu nodes):\n", hypervisor.nodes().node_count());
  std::printf("  host-reserved : %zu\n",
              hypervisor.nodes().NodesOfKind(NodeKind::kHostReserved).size());
  std::printf("  guest-reserved: %zu (one per free subarray group)\n",
              hypervisor.nodes().NodesOfKind(NodeKind::kGuestReserved).size());
  std::printf("  subarray group: %lu MiB; EPT guard block: %lu KiB/socket (%.4f%% of DRAM)\n\n",
              static_cast<unsigned long>(hypervisor.group_map().group_bytes() >> 20),
              static_cast<unsigned long>(hypervisor.ept_reserved_bytes() / 2 >> 10),
              100.0 * static_cast<double>(hypervisor.ept_reserved_bytes()) /
                  static_cast<double>(geometry.total_bytes()));

  // 3. Create a VM. Siloz reserves whole subarray groups for it, creates its
  //    control group, statically allocates 2 MiB-backed contiguous memory,
  //    and builds its EPT from the protected pool.
  VmConfig config{.name = "demo", .memory_bytes = 4_GiB, .socket = 0};
  Result<VmId> id = hypervisor.CreateVm(config);
  if (!id.ok()) {
    std::fprintf(stderr, "CreateVm failed: %s\n", id.error().ToString().c_str());
    return 1;
  }
  Vm& vm = **hypervisor.GetVm(*id);
  std::printf("VM '%s': %zu guest node(s), %zu EPT table pages, regions:\n",
              vm.config().name.c_str(), vm.guest_nodes().size(),
              vm.ept()->table_page_count());
  for (const VmRegion& region : vm.regions()) {
    std::printf("  %-10s GPA 0x%09lx -> HPA 0x%09lx (%lu MiB, %s)\n",
                MemoryTypeName(region.type), static_cast<unsigned long>(region.gpa),
                static_cast<unsigned long>(region.hpa),
                static_cast<unsigned long>(region.bytes >> 20),
                IsUnmediated(region.type) ? "unmediated" : "mediated");
  }

  // 4. Every unmediated page is confined to the VM's private groups; the
  //    audit re-walks the EPT and verifies it.
  Status audit = hypervisor.AuditVmIsolation(*id);
  std::printf("\nIsolation audit: %s\n", audit.ok() ? "PASS" : audit.error().ToString().c_str());

  // 5. Translate one guest address end to end.
  const uint64_t gpa = 123 * kPage2M + 0x1234;
  const uint64_t hpa = *vm.ept()->Translate(gpa);
  const MediaAddress media = *decoder.PhysToMedia(hpa);
  std::printf("GPA 0x%lx -> HPA 0x%lx -> %s (subarray group %u)\n",
              static_cast<unsigned long>(gpa), static_cast<unsigned long>(hpa),
              media.ToString().c_str(), *hypervisor.group_map().GroupOfPhys(hpa));
  return audit.ok() ? 0 : 1;
}
