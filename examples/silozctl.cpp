// silozctl: command-line front end over the simulated platform — inspect
// topology, run attack campaigns, compare kernels, and audit isolation.
//
// Usage:
//   silozctl topology [--platform NAME] [--snc] [--ddr5] [--subarray-rows N]
//   silozctl attack   [--baseline] [--patterns N] [--seed N]
//   silozctl audit    [--flip-ept] [--stride BYTES] [--threads N] [--json]
//   silozctl run      [workload] [--platform NAME] [--baseline] [--trials N]
//                     [--threads N] [--faults]
//   silozctl fleet    [--policy reject|queue|defrag] [--seed N] [--threads N]
//                     [--duration S] [--rate R] [--burst A] [--epoch S]
//                     [--timeout S] [--json]
//   silozctl groupof  <phys-address> [--platform NAME]
//
// --platform selects a registered platform (skylake, cascadelake, zen,
// ddr5): decoder family, geometry, and DDR-generation semantics together.
// It replaces the legacy --snc/--ddr5 geometry toggles where both are given.
//
// Every command additionally accepts --metrics-out FILE and --trace-out FILE
// (observability exports; written after the command completes, never mixed
// into stdout). --threads 0 (the default) auto-detects: $SILOZ_THREADS if
// set, else the hardware concurrency.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/addr/platform.h"
#include "src/attack/blacksmith.h"
#include "src/audit/auditor.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/experiment.h"
#include "src/sim/fleet.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"
#include "src/workload/workloads.h"

using namespace siloz;

namespace {

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

uint64_t FlagValue(int argc, char** argv, const char* flag, uint64_t fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 0);
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* flag) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return "";
}

double FlagDouble(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return fallback;
}

int CmdTopology(int argc, char** argv) {
  const std::string platform = FlagString(argc, argv, "--platform");
  DramGeometry geometry = HasFlag(argc, argv, "--ddr5") ? Ddr5Geometry() : DramGeometry{};
  SilozConfig config;
  std::unique_ptr<AddressDecoder> decoder;
  if (!platform.empty()) {
    const PlatformInfo* info = FindPlatform(platform);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown platform '%s'\n", platform.c_str());
      return 1;
    }
    geometry = info->geometry;
    geometry.rows_per_subarray = static_cast<uint32_t>(
        FlagValue(argc, argv, "--subarray-rows", geometry.rows_per_subarray));
    config.uniform_internal_addressing = info->uniform_internal_addressing;
    Result<std::unique_ptr<AddressDecoder>> made = info->make(geometry);
    if (!made.ok()) {
      std::fprintf(stderr, "platform '%s': %s\n", platform.c_str(),
                   made.error().ToString().c_str());
      return 1;
    }
    decoder = std::move(*made);
  } else if (HasFlag(argc, argv, "--snc")) {
    decoder = std::make_unique<SncDecoder>(geometry, 2);
  } else {
    decoder = std::make_unique<SkylakeDecoder>(geometry);
  }
  config.rows_per_subarray = static_cast<uint32_t>(
      FlagValue(argc, argv, "--subarray-rows", geometry.rows_per_subarray));
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(*decoder, memory, config);
  if (Status status = hypervisor.Boot(); !status.ok()) {
    std::fprintf(stderr, "boot: %s\n", status.error().ToString().c_str());
    return 1;
  }
  std::printf("platform : %s\n", geometry.ToString().c_str());
  std::printf("decoder  : %s\n", decoder->name().c_str());
  std::printf("groups   : %u/socket x %lu MiB%s\n", hypervisor.group_map().groups_per_socket(),
              static_cast<unsigned long>(hypervisor.group_map().group_bytes() >> 20),
              hypervisor.using_artificial_groups() ? " (artificial)" : "");
  std::printf("nodes    : %zu total (%zu host, %zu guest)\n", hypervisor.nodes().node_count(),
              hypervisor.nodes().NodesOfKind(NodeKind::kHostReserved).size(),
              hypervisor.nodes().NodesOfKind(NodeKind::kGuestReserved).size());
  std::printf("EPT block: %lu KiB reserved (%.4f%% of DRAM), %zu pool pages/socket\n",
              static_cast<unsigned long>(hypervisor.ept_reserved_bytes() >> 10),
              100.0 * static_cast<double>(hypervisor.ept_reserved_bytes()) /
                  static_cast<double>(geometry.total_bytes()),
              hypervisor.ept_pool_free(0));
  for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
    std::printf("socket %u : %zu guest nodes available\n", socket,
                hypervisor.AvailableGuestNodes(socket).size());
  }
  return 0;
}

int CmdAttack(int argc, char** argv) {
  const bool baseline = HasFlag(argc, argv, "--baseline");
  MachineConfig machine_config;
  machine_config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.trr.enabled = true;
  profile.trr.act_threshold = 400;
  machine_config.dimm_profiles = {profile};
  Machine machine(machine_config);

  SilozConfig config;
  config.enabled = !baseline;
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
  SILOZ_CHECK(hypervisor.Boot().ok());
  const VmId attacker = *hypervisor.CreateVm({.name = "attacker", .memory_bytes = 3_GiB});
  const VmId victim = *hypervisor.CreateVm({.name = "victim", .memory_bytes = 3_GiB});
  Vm& attacker_vm = **hypervisor.GetVm(attacker);

  std::vector<PhysRange> reachable;
  for (const VmRegion& region : attacker_vm.regions()) {
    reachable.push_back(PhysRange{region.hpa, region.hpa + region.bytes});
  }
  BlacksmithConfig fuzz;
  fuzz.patterns = static_cast<uint32_t>(FlagValue(argc, argv, "--patterns", 12));
  fuzz.seed = FlagValue(argc, argv, "--seed", 0xB1AC5);
  std::printf("kernel=%s patterns=%u seed=%lu ... ", baseline ? "baseline" : "siloz",
              fuzz.patterns, static_cast<unsigned long>(fuzz.seed));
  std::fflush(stdout);
  const FuzzReport report = BlacksmithFuzzer(fuzz).Run(machine, reachable);

  uint64_t in_victim = 0;
  Vm& victim_vm = **hypervisor.GetVm(victim);
  for (const PhysFlip& flip : report.flips) {
    for (const VmRegion& region : victim_vm.regions()) {
      in_victim += (flip.phys >= region.hpa && flip.phys < region.hpa + region.bytes);
    }
  }
  std::printf("done\n%lu activations, %zu flips, %lu in the victim VM\n",
              static_cast<unsigned long>(report.activations), report.flips.size(),
              static_cast<unsigned long>(in_victim));
  const Status audit_a = hypervisor.AuditVmIsolation(attacker);
  const Status audit_v = hypervisor.AuditVmIsolation(victim);
  std::printf("audits: attacker=%s victim=%s\n", audit_a.ok() ? "PASS" : "FAIL",
              audit_v.ok() ? "PASS" : "FAIL");
  return 0;
}

int CmdAudit(int argc, char** argv) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  SILOZ_CHECK(hypervisor.Boot().ok());
  const VmId vm = *hypervisor.CreateVm({.name = "tenant", .memory_bytes = 3_GiB});
  if (HasFlag(argc, argv, "--flip-ept")) {
    Vm& tenant = **hypervisor.GetVm(vm);
    memory.FlipBit(tenant.ept()->table_pages().back() + 4, 2);
    std::printf("injected a bit flip into an EPT table page\n");
  }

  // Static pass first: prove the boot-time plan upholds the four isolation
  // invariants, then check this VM's live EPT bytes against it.
  audit::Options options;
  options.probe_stride = FlagValue(argc, argv, "--stride", 4_MiB);
  options.random_probes = 512;
  options.threads = static_cast<uint32_t>(FlagValue(argc, argv, "--threads", 0));
  audit::Auditor auditor(hypervisor, RemapConfig{}, options);
  audit::Report report = auditor.Run();
  auditor.CheckVmContainment(**hypervisor.GetVm(vm), report);
  if (HasFlag(argc, argv, "--json")) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::printf("%s", report.ToText().c_str());
  }
  // Kept out of the report itself so stdout stays identical for every N.
  std::fprintf(stderr, "blast-radius scan: %u workers, %llu tasks (%llu stolen), wall %.1f ms\n",
               report.scan_pool.workers, static_cast<unsigned long long>(report.scan_pool.tasks),
               static_cast<unsigned long long>(report.scan_pool.steals), report.scan_wall_ms);

  const Status audit = hypervisor.AuditVmIsolation(vm);
  std::printf("EPT walk audit: %s\n", audit.ok() ? "PASS" : audit.error().ToString().c_str());
  return (audit.ok() && report.ok()) ? 0 : 2;
}

int CmdRun(int argc, char** argv) {
  // The controller-backed experiment path: boots a machine + hypervisor per
  // trial and serves the workload through the memory controllers, so the
  // exported metrics include per-bank-group ACT/PRE/RD/WR/REF counts on top
  // of the hypervisor allocation counters. Model metrics are identical for
  // every --threads N (DESIGN.md §9).
  const std::string name = (argc >= 3 && argv[2][0] != '-') ? argv[2] : "redis-a";
  Result<WorkloadSpec> spec = FindWorkload(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }
  spec->accesses = FlagValue(argc, argv, "--accesses", spec->accesses);
  RunnerConfig config;
  const std::string platform = FlagString(argc, argv, "--platform");
  if (!platform.empty()) {
    if (Status applied = ApplyPlatform(config, platform); !applied.ok()) {
      std::fprintf(stderr, "--platform: %s\n", applied.error().ToString().c_str());
      return 1;
    }
  }
  config.hypervisor.enabled = !HasFlag(argc, argv, "--baseline");
  config.trials = static_cast<uint32_t>(FlagValue(argc, argv, "--trials", 5));
  config.seed = FlagValue(argc, argv, "--seed", 42);
  config.threads = static_cast<uint32_t>(FlagValue(argc, argv, "--threads", 0));
  config.fault_tracking = HasFlag(argc, argv, "--faults");
  Result<RunMeasurement> run = RunWorkload(config, *spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.error().ToString().c_str());
    return 1;
  }
  std::printf("workload=%s kernel=%s platform=%s trials=%u\n", spec->name.c_str(),
              config.hypervisor.enabled ? "siloz" : "baseline",
              config.platform.empty() ? "skylake" : config.platform.c_str(), config.trials);
  std::printf("elapsed   : %.3f ms/trial (stddev %.3f)\n", run->elapsed_ns.mean() / 1e6,
              run->elapsed_ns.stddev() / 1e6);
  std::printf("bandwidth : %.3f GiB/s\n", run->bandwidth_gibs.mean());
  std::printf("row hits  : %.1f%%\n", 100.0 * run->row_hit_rate);
  if (config.fault_tracking) {
    std::printf("bit flips : %zu\n", run->flip_phys.size());
  }
  return 0;
}

int CmdFleet(int argc, char** argv) {
  // Fleet churn on the 8-socket fleet platform (§7 operational costs).
  // Model output (stdout) is bit-identical for every --threads N; the
  // wall-clock latency tails go to stderr so stdout stays comparable.
  FleetConfig config;
  const std::string policy = FlagString(argc, argv, "--policy");
  if (!policy.empty()) {
    Result<AdmissionPolicy> parsed = ParseAdmissionPolicy(policy);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--policy: %s\n", parsed.error().ToString().c_str());
      return 1;
    }
    config.policy = *parsed;
  }
  config.seed = FlagValue(argc, argv, "--seed", config.seed);
  config.threads = static_cast<uint32_t>(FlagValue(argc, argv, "--threads", 0));
  config.duration_s = FlagDouble(argc, argv, "--duration", config.duration_s);
  config.arrivals_per_s = FlagDouble(argc, argv, "--rate", config.arrivals_per_s);
  config.burst_amplitude = FlagDouble(argc, argv, "--burst", config.burst_amplitude);
  config.epoch_s = FlagDouble(argc, argv, "--epoch", config.epoch_s);
  config.queue_timeout_s = FlagDouble(argc, argv, "--timeout", config.queue_timeout_s);
  Result<FleetReport> report = RunFleetChurn(config);
  if (!report.ok()) {
    std::fprintf(stderr, "fleet: %s\n", report.error().ToString().c_str());
    return 1;
  }
  if (HasFlag(argc, argv, "--json")) {
    std::printf("%s\n", report->ModelJson().c_str());
  } else {
    std::printf("%s", report->ModelText().c_str());
  }
  std::fprintf(stderr, "%s", FleetReport::LatencyText().c_str());
  return report->drained_clean ? 0 : 2;
}

int CmdGroupOf(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: silozctl groupof <phys-address> [--platform NAME]\n");
    return 1;
  }
  const std::string platform = FlagString(argc, argv, "--platform");
  DramGeometry geometry;
  std::unique_ptr<AddressDecoder> decoder;
  if (!platform.empty()) {
    const PlatformInfo* info = FindPlatform(platform);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown platform '%s'\n", platform.c_str());
      return 1;
    }
    geometry = info->geometry;
    Result<std::unique_ptr<AddressDecoder>> made = info->make(geometry);
    if (!made.ok()) {
      std::fprintf(stderr, "platform '%s': %s\n", platform.c_str(),
                   made.error().ToString().c_str());
      return 1;
    }
    decoder = std::move(*made);
  } else {
    decoder = std::make_unique<SkylakeDecoder>(geometry);
  }
  SubarrayGroupMap map = *SubarrayGroupMap::Build(*decoder, geometry.rows_per_subarray);
  const uint64_t phys = std::strtoull(argv[2], nullptr, 0);
  Result<uint32_t> group = map.GroupOfPhys(phys);
  if (!group.ok()) {
    std::fprintf(stderr, "%s\n", group.error().ToString().c_str());
    return 1;
  }
  const MediaAddress media = *decoder->PhysToMedia(phys);
  std::printf("phys 0x%lx -> %s -> subarray group %u (socket %u, subarray %u)\n",
              static_cast<unsigned long>(phys), media.ToString().c_str(), *group,
              map.SocketOfGroup(*group), map.IndexInCluster(*group));
  return 0;
}

}  // namespace

int Dispatch(int argc, char** argv, const std::string& command) {
  if (command == "topology") {
    return CmdTopology(argc, argv);
  }
  if (command == "attack") {
    return CmdAttack(argc, argv);
  }
  if (command == "audit") {
    return CmdAudit(argc, argv);
  }
  if (command == "run") {
    return CmdRun(argc, argv);
  }
  if (command == "fleet") {
    return CmdFleet(argc, argv);
  }
  if (command == "groupof") {
    return CmdGroupOf(argc, argv);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: silozctl <command>\n"
                 "  topology [--platform NAME] [--snc] [--ddr5] [--subarray-rows N]\n"
                 "  attack   [--baseline] [--patterns N] [--seed N]\n"
                 "  run      [workload] [--platform NAME] [--baseline] [--trials N]\n"
                 "           [--threads N] [--faults]\n"
                 "  fleet    [--policy reject|queue|defrag] [--seed N] [--threads N]\n"
                 "           [--duration S] [--rate R] [--burst A] [--epoch S]\n"
                 "           [--timeout S] [--json]\n"
                 "  audit    [--flip-ept] [--stride BYTES] [--threads N] [--json]\n"
                 "  groupof  <phys-address> [--platform NAME]\n"
                 "common: --threads N         worker count (0 = auto: $SILOZ_THREADS,\n"
                 "                            else hardware concurrency)\n"
                 "        --platform NAME     registered platform (skylake, cascadelake,\n"
                 "                            zen, ddr5): decoder family + geometry\n"
                 "        --metrics-out FILE  write the metrics registry as JSON\n"
                 "        --trace-out FILE    record + write a Chrome trace-event log\n");
    return 1;
  }
  const std::string command = argv[1];
  const std::string metrics_out = FlagString(argc, argv, "--metrics-out");
  const std::string trace_out = FlagString(argc, argv, "--trace-out");
  if (!trace_out.empty()) {
    obs::Tracer::Global().Enable();
  }
  // Commands keep all simulated objects function-local, so their destructors
  // have flushed every model counter by the time Dispatch returns.
  const int status = Dispatch(argc, argv, command);
  if (!metrics_out.empty() && !obs::WriteMetricsJson(metrics_out)) {
    return 1;
  }
  if (!trace_out.empty() && !obs::WriteTraceJson(trace_out)) {
    return 1;
  }
  return status;
}
