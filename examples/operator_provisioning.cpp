// Operator's view: managing a Siloz host over a day of tenant churn —
// capacity accounting, the §5.3 reservation lifecycle, the §8.1
// fragmentation trade-off, and the SNC-2 option that halves group size.
//
// Run: ./build/examples/operator_provisioning
#include <cstdio>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

using namespace siloz;

namespace {

void PrintCapacity(const char* when, SilozHypervisor& hypervisor) {
  uint64_t free_guest_bytes = 0;
  for (uint32_t socket = 0; socket < 2; ++socket) {
    for (uint32_t node : hypervisor.AvailableGuestNodes(socket)) {
      free_guest_bytes += (*hypervisor.nodes().Get(node))->allocator().free_bytes();
    }
  }
  std::printf("%-34s: %3zu + %3zu free guest nodes (%lu GiB sellable)\n", when,
              hypervisor.AvailableGuestNodes(0).size(), hypervisor.AvailableGuestNodes(1).size(),
              static_cast<unsigned long>(free_guest_bytes >> 30));
}

}  // namespace

int main() {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  SILOZ_CHECK(hypervisor.Boot().ok());

  std::printf("== Day in the life of a Siloz host ==\n\n");
  PrintCapacity("boot", hypervisor);

  // Morning: a batch of tenants lands. Sizing is in whole subarray groups
  // (1.5 GiB): the granularity major providers already sell at (§8.1).
  std::vector<VmId> fleet;
  const struct {
    const char* name;
    uint64_t bytes;
    uint32_t socket;
  } requests[] = {
      {"web-frontend", 6_GiB, 0},   {"database", 24_GiB, 0},    {"cache", 12_GiB, 1},
      {"batch-worker", 48_GiB, 1},  {"micro-a", 512_MiB, 0},    {"micro-b", 512_MiB, 0},
  };
  for (const auto& request : requests) {
    Result<VmId> id = hypervisor.CreateVm(
        {.name = request.name, .memory_bytes = request.bytes, .socket = request.socket});
    SILOZ_CHECK(id.ok()) << id.error().ToString();
    Vm& vm = **hypervisor.GetVm(*id);
    const uint64_t reserved = vm.guest_nodes().size() * hypervisor.group_map().group_bytes();
    std::printf("  + %-13s %5lu MiB asked, %5lu MiB reserved (%zu group(s), %4.0f%% used)\n",
                request.name, static_cast<unsigned long>(request.bytes >> 20),
                static_cast<unsigned long>(reserved >> 20), vm.guest_nodes().size(),
                100.0 * static_cast<double>(request.bytes) / static_cast<double>(reserved));
    fleet.push_back(*id);
  }
  PrintCapacity("after morning batch", hypervisor);

  // The micro-VMs show the §8.1 fragmentation concern: a 512 MiB tenant
  // holds a 1.5 GiB group. Sub-NUMA clustering halves the granularity:
  {
    SncDecoder snc(geometry, 2);
    FlatPhysMemory snc_memory;
    SilozHypervisor snc_hypervisor(snc, snc_memory, SilozConfig{});
    SILOZ_CHECK(snc_hypervisor.Boot().ok());
    std::printf("\n§8.1: with SNC-2 the subarray group shrinks to %lu MiB, so a\n"
                "512 MiB micro-VM wastes %lu MiB instead of %lu MiB.\n",
                static_cast<unsigned long>(snc_hypervisor.group_map().group_bytes() >> 20),
                static_cast<unsigned long>(
                    (snc_hypervisor.group_map().group_bytes() - 512_MiB) >> 20),
                static_cast<unsigned long>((hypervisor.group_map().group_bytes() - 512_MiB) >> 20));
  }

  // Afternoon: the database shuts down. Its pages return to the node free
  // pools immediately, but the *reservation* survives until a privileged
  // operator destroys the control group (§5.3) — no accidental reuse.
  std::printf("\nShutting down 'database'...\n");
  SILOZ_CHECK(hypervisor.DestroyVm(fleet[1]).ok());
  PrintCapacity("after shutdown (still reserved)", hypervisor);
  std::printf("Releasing its control group...\n");
  SILOZ_CHECK(hypervisor.ReleaseVmNodes(fleet[1]).ok());
  PrintCapacity("after cgroup release", hypervisor);

  // Evening: a big tenant takes the freed capacity.
  Result<VmId> evening =
      hypervisor.CreateVm({.name = "analytics", .memory_bytes = 24_GiB, .socket = 0});
  SILOZ_CHECK(evening.ok()) << evening.error().ToString();
  std::printf("  + analytics reuses the database's groups\n");
  PrintCapacity("end of day", hypervisor);

  // Integrity posture, any time: every VM audits clean.
  for (VmId id : fleet) {
    if (id == fleet[1]) {
      continue;  // released
    }
    SILOZ_CHECK(hypervisor.AuditVmIsolation(id).ok());
  }
  std::printf("\nAll tenant audits: PASS\n");
  return 0;
}
