"""Token-pattern helpers shared by the siloz-lint rules.

These encode the handful of C++ shapes the rules care about — statement
starts, callee chains, Status/Result function signatures — against the
lexer.py token stream. They are heuristics, tuned so that misclassification
errs toward *not* reporting (rules stay quiet rather than noisy) except
where a rule's contract explicitly prefers over-reporting plus suppression.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional, Set, Tuple

from lexer import Token, match_angle, match_brace, match_paren

_STMT_PREV = frozenset({";", "{", "}", "else", "do", ":"})
_CONTROL_KEYWORDS = frozenset({"if", "while", "for", "switch"})

_SPECIFIERS = frozenset({"const", "noexcept", "override", "final", "mutable"})


def is_statement_start(tokens: List[Token], idx: int) -> bool:
    """True when tokens[idx] can begin an expression statement."""
    if idx == 0:
        return True
    prev = tokens[idx - 1]
    if prev.kind == "pp":
        return True
    if prev.text in _STMT_PREV:
        return True
    if prev.text == ")":
        open_idx = _match_paren_backward(tokens, idx - 1)
        if open_idx > 0 and tokens[open_idx - 1].text in _CONTROL_KEYWORDS:
            return True
    return False


def _match_paren_backward(tokens: List[Token], close_idx: int) -> int:
    depth = 0
    for j in range(close_idx, -1, -1):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text == ")":
            depth += 1
        elif t.text == "(":
            depth -= 1
            if depth == 0:
                return j
    return -1


def callee_chain_start(tokens: List[Token], callee_idx: int) -> int:
    """First token of the `a.b->c::d` chain whose last name is callee_idx."""
    s = callee_idx
    while (
        s >= 2
        and tokens[s - 1].text in ("::", ".", "->")
        and tokens[s - 2].kind == "id"
    ):
        s -= 2
    return s


def collect_status_functions(tokens: List[Token]) -> Set[str]:
    """Names of functions declared to return Status or Result<...>."""
    names: Set[str] = set()
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in ("Status", "Result"):
            continue
        if i > 0 and tokens[i - 1].text in (".", "->"):
            continue
        j = i + 1
        if tok.text == "Result":
            if j >= n or tokens[j].text != "<":
                continue
            j = match_angle(tokens, j)
            if j < 0:
                continue
            j += 1
        # Qualified name: (id ::)* id '('
        while j + 1 < n and tokens[j].kind == "id" and tokens[j + 1].text == "::":
            j += 2
        if j + 1 < n and tokens[j].kind == "id" and tokens[j + 1].text == "(":
            names.add(tokens[j].text)
    return names


class FunctionDef(NamedTuple):
    name: str
    name_token: Token
    body_start: int  # index of '{'
    body_end: int  # index of matching '}'


def iter_function_defs(tokens: List[Token]) -> Iterator[FunctionDef]:
    """Yields function definitions recognizable as `... name(args) ... {`.

    Recognition is syntactic: an identifier followed by a parameter list
    whose closing ')' leads (through cv/ref/specifier tokens) to a '{', and
    that is not itself a control keyword or preceded by one. That covers
    free functions, methods, and out-of-line `Class::Method` definitions;
    lambdas have no name and are skipped.
    """
    n = len(tokens)
    i = 0
    while i < n - 1:
        tok = tokens[i]
        if tok.kind != "id" or tokens[i + 1].text != "(":
            i += 1
            continue
        if tok.text in _CONTROL_KEYWORDS or tok.text in ("return", "sizeof"):
            i += 1
            continue
        close = match_paren(tokens, i + 1)
        if close < 0:
            i += 1
            continue
        m = close + 1
        while m < n and (
            (tokens[m].kind == "id" and tokens[m].text in _SPECIFIERS)
            or tokens[m].text in ("&", "&&")
        ):
            m += 1
        if m < n and tokens[m].text == "{":
            end = match_brace(tokens, m)
            if end > 0:
                yield FunctionDef(tok.text, tok, m, end)
                # Do not skip the body: nested local definitions are rare,
                # but calls inside bodies are scanned by callers anyway.
        i += 1


def called_names(tokens: List[Token], start: int, end: int) -> Set[str]:
    """Identifiers used as `name(` within tokens[start:end]."""
    out: Set[str] = set()
    for j in range(start, min(end, len(tokens) - 1)):
        if tokens[j].kind == "id" and tokens[j + 1].text == "(":
            out.add(tokens[j].text)
    return out


def first_template_arg_has_pointer(tokens: List[Token], angle_idx: int) -> bool:
    """True if the first template argument of the '<' at angle_idx has a '*'."""
    depth = 0
    for j in range(angle_idx, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text == "<":
            depth += 1
        elif t.text and set(t.text) == {">"}:
            depth -= len(t.text)
            if depth <= 0:
                return False
        elif t.text == "," and depth == 1:
            return False
        elif t.text == "*" and depth == 1:
            return True
        elif t.text in (";", "{", "}"):
            return False
    return False
