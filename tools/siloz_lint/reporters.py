"""Finding reporters: human text and byte-stable JSON.

The JSON form is the machine contract: findings sorted by
(file, line, col, rule, message), fixed separators, sorted keys, one
trailing newline. The lint goldens in tests/lint/golden compare this output
byte-for-byte, so any formatting change here is a deliberate golden update.
"""

from __future__ import annotations

import json
from typing import List

from engine import Finding

JSON_SCHEMA_VERSION = 1


def to_text(findings: List[Finding]) -> str:
    lines = [
        f"{f.file}:{f.line}:{f.col}: [{f.rule}] {f.message}" for f in findings
    ]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines) + "\n"


def to_json(findings: List[Finding]) -> str:
    doc = {
        "schema": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
