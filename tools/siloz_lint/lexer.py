"""Pure-Python C++ tokenizer for siloz-lint's token frontend.

This is deliberately not a full C++ lexer: it produces exactly the token
stream the rules in tools/siloz_lint/rules need — identifiers, numbers,
string/char literals, punctuation, and whole-line preprocessor directives —
while comments are diverted into a side table keyed by line number so the
suppression scanner can find `// siloz-lint: allow(...)` annotations without
the rules ever seeing comment text.

Guarantees the rules rely on:
  * Raw strings (R"delim(...)delim"), line continuations inside
    preprocessor directives, and multi-line /* */ comments never leak
    their contents into the token stream.
  * Multi-character operators are maximal-munch (">>=" is one token), so
    angle-bracket matching treats any all-'>' punct token as that many
    closing angles.
  * Every token carries the 1-based line and column of its first character.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple


class Token(NamedTuple):
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct' | 'pp'
    text: str
    line: int
    col: int


# Maximal-munch punctuation, longest first.
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*", "##",
)

_ID_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def tokenize(text: str) -> Tuple[List[Token], Dict[int, str]]:
    """Returns (tokens, comments) where comments maps line -> comment text.

    Multiple comments on one line are joined with a space; a block comment
    spanning lines is recorded on every line it covers (so a suppression
    inside it attaches to the finding's line as usual).
    """
    tokens: List[Token] = []
    comments: Dict[int, str] = {}
    i, n = 0, len(text)
    line, col = 1, 1

    def note_comment(start_line: int, body: str) -> None:
        for off, chunk in enumerate(body.split("\n")):
            key = start_line + off
            comments[key] = (comments[key] + " " + chunk) if key in comments else chunk

    def advance(span: str) -> None:
        nonlocal line, col
        newlines = span.count("\n")
        if newlines:
            line += newlines
            col = len(span) - span.rfind("\n")
        else:
            col += len(span)

    while i < n:
        c = text[i]

        if c in " \t\r\n":
            j = i
            while j < n and text[j] in " \t\r\n":
                j += 1
            advance(text[i:j])
            i = j
            continue

        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            note_comment(line, text[i:j])
            advance(text[i:j])
            i = j
            continue

        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            note_comment(line, text[i:j])
            advance(text[i:j])
            i = j
            continue

        if c == "#" and col == _line_indent_col(text, i):
            # Whole preprocessor directive, honoring backslash continuations.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                # Count trailing backslashes before the newline (handles \r\n).
                m = k
                if m > j and text[m - 1] == "\r":
                    m -= 1
                if m > j and text[m - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            tokens.append(Token("pp", text[i:j], line, col))
            advance(text[i:j])
            i = j
            continue

        # Raw string literal: optional encoding prefix + R"delim( ... )delim".
        if c in "RuUL" or c == "u":
            j = i
            if text[j] in "uUL":
                if text[j] == "u" and j + 1 < n and text[j + 1] == "8":
                    j += 2
                else:
                    j += 1
            if j < n and text[j] == "R" and j + 1 < n and text[j + 1] == '"':
                dend = text.find("(", j + 2)
                if dend > 0:
                    delim = text[j + 2 : dend]
                    close = ")" + delim + '"'
                    k = text.find(close, dend + 1)
                    k = n if k < 0 else k + len(close)
                    tokens.append(Token("str", text[i:k], line, col))
                    advance(text[i:k])
                    i = k
                    continue

        if c == '"' or (c in "uUL" and i + 1 < n and text[i + 1] == '"'):
            j = i if c == '"' else i + 1
            k = _scan_quoted(text, j, '"')
            tokens.append(Token("str", text[i:k], line, col))
            advance(text[i:k])
            i = k
            continue

        if c == "'" or (c in "uUL" and i + 1 < n and text[i + 1] == "'"):
            j = i if c == "'" else i + 1
            k = _scan_quoted(text, j, "'")
            tokens.append(Token("chr", text[i:k], line, col))
            advance(text[i:k])
            i = k
            continue

        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line, col))
            advance(text[i:j])
            i = j
            continue

        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (
                text[j] in _ID_CONT
                or text[j] == "."
                or (text[j] in "+-" and text[j - 1] in "eEpP")
            ):
                j += 1
            tokens.append(Token("num", text[i:j], line, col))
            advance(text[i:j])
            i = j
            continue

        matched = False
        for group in (_PUNCT3, _PUNCT2):
            for op in group:
                if text.startswith(op, i):
                    tokens.append(Token("punct", op, line, col))
                    advance(op)
                    i += len(op)
                    matched = True
                    break
            if matched:
                break
        if matched:
            continue

        tokens.append(Token("punct", c, line, col))
        advance(c)
        i += 1

    return tokens, comments


def _line_indent_col(text: str, i: int) -> int:
    """Column a '#' would need to start a directive: first non-ws on line."""
    start = text.rfind("\n", 0, i) + 1
    j = start
    while j < i and text[j] in " \t":
        j += 1
    return (j - start) + 1 if j == i else -1


def _scan_quoted(text: str, i: int, quote: str) -> int:
    """Index one past the closing quote of the literal opening at text[i]."""
    j = i + 1
    n = len(text)
    while j < n:
        if text[j] == "\\":
            j += 2
            continue
        if text[j] == quote or text[j] == "\n":
            return j + 1
        j += 1
    return n


def match_paren(tokens: List[Token], i: int) -> int:
    """Index of the ')' matching the '(' at tokens[i], or -1."""
    return _match(tokens, i, "(", ")")


def match_brace(tokens: List[Token], i: int) -> int:
    """Index of the '}' matching the '{' at tokens[i], or -1."""
    return _match(tokens, i, "{", "}")


def match_bracket(tokens: List[Token], i: int) -> int:
    """Index of the ']' matching the '[' at tokens[i], or -1."""
    return _match(tokens, i, "[", "]")


def _match(tokens: List[Token], i: int, open_: str, close: str) -> int:
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text == open_:
            depth += 1
        elif t.text == close:
            depth -= 1
            if depth == 0:
                return j
    return -1


def match_angle(tokens: List[Token], i: int) -> int:
    """Index of the token holding the '>' matching the '<' at tokens[i].

    Treats an all-'>' punct token (">", ">>") as that many closing angles and
    bails out (-1) on tokens that rule out a template-argument context, so
    `a < b;` is not mistaken for an unterminated template list.
    """
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text == "<":
            depth += 1
        elif t.text and set(t.text) == {">"}:
            depth -= len(t.text)
            if depth <= 0:
                return j
        elif t.text in (";", "{", "}"):
            return -1
    return -1
