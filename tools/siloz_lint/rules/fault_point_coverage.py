"""fault-point-coverage: resource operations outside the fault sweep.

The lifecycle conservation sweep (DESIGN.md §11) proves error paths
leak-free by failing each SILOZ_FAULT_POINT once. That proof is only as
strong as coverage: an allocation or release path with no fault point on it
is a path the sweep can never fail, so its rollback is untested.

Scope: files under the configured `fault_point_dirs` (the resource-owning
layers — hostmem, ept, the hypervisor). Within them, every function
definition whose name matches `fault_point_name_regex` (Allocate/Create/
Reserve/Free/Destroy/... shapes) must either contain SILOZ_FAULT_POINT
directly or call — transitively, within the scoped set — a function that
does. Transitivity is a fixpoint over the name-based call graph, so
`DestroyVm → FreePagesLocked → SILOZ_FAULT_POINT` counts as covered without
demanding a redundant fault point per wrapper.
"""

from __future__ import annotations

import re
from typing import Dict, List

from cpp_util import called_names, iter_function_defs
from engine import FileContext, Finding, ProjectContext


def _in_scope(display_path: str, dirs) -> bool:
    return any(
        display_path == d or display_path.startswith(d + "/") for d in dirs
    )


class FaultPointCoverageRule:
    name = "fault-point-coverage"

    def collect(self, ctx: FileContext, project: ProjectContext) -> None:
        dirs = project.config["fault_point_dirs"]
        if not _in_scope(ctx.display_path, dirs):
            return
        state = project.rule_state(self.name)
        functions: Dict[str, dict] = state.setdefault("functions", {})
        defs = state.setdefault("defs", [])
        for fn in iter_function_defs(ctx.tokens):
            calls = called_names(ctx.tokens, fn.body_start, fn.body_end)
            has_fp = "SILOZ_FAULT_POINT" in calls
            entry = functions.setdefault(
                fn.name, {"has_fp": False, "calls": set()}
            )
            entry["has_fp"] = entry["has_fp"] or has_fp
            entry["calls"].update(calls)
            defs.append((ctx.display_path, fn.name, fn.name_token))

    def run(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        dirs = project.config["fault_point_dirs"]
        if not _in_scope(ctx.display_path, dirs):
            return []
        state = project.rule_state(self.name)
        covered = state.get("covered")
        if covered is None:
            covered = self._fixpoint(state.get("functions", {}))
            state["covered"] = covered
        name_re = re.compile(project.config["fault_point_name_regex"])
        findings: List[Finding] = []
        seen = set()
        for path, fn_name, token in state.get("defs", []):
            if path != ctx.display_path:
                continue
            if not name_re.search(fn_name) or fn_name in covered:
                continue
            key = (path, token.line, fn_name)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                ctx.finding(
                    token,
                    self.name,
                    f"resource operation '{fn_name}' reaches no "
                    "SILOZ_FAULT_POINT; the lifecycle fault sweep cannot "
                    "exercise its error path",
                )
            )
        return findings

    @staticmethod
    def _fixpoint(functions: Dict[str, dict]) -> set:
        covered = {n for n, e in functions.items() if e["has_fp"]}
        changed = True
        while changed:
            changed = False
            for n, e in functions.items():
                if n not in covered and e["calls"] & covered:
                    covered.add(n)
                    changed = True
        return covered
