"""raw-nondeterminism: entropy and clock sources outside src/base/rng.

Every random draw in the simulator must route through the seeded
SplitMix64/xoshiro layer in src/base/rng so runs replay bit-identically
from a --seed. Raw sources break that: `rand()`/`srand()` use hidden global
state, `time()`/`clock()`/`gettimeofday()` read the host clock,
`std::random_device` is entropy by definition, and unseeded standard
engines default to nondeterministic construction. All are flagged outside
the configured `rng_exempt_paths`.

The rule also flags pointer-keyed *ordered* containers
(`std::map<T*, ...>`, `std::set<T*>`): their iteration order is address
order, which ASLR re-rolls every run — determinism-hostile in exactly the
way an unordered container is, but invisible to the nondet-iteration rule
because ordered containers are normally safe to iterate.

steady_clock/system_clock reads are deliberately NOT flagged: wall-time
measurement for traces and benchmarks is outside the determinism contract
(DESIGN.md §9); only *model-visible* values may not depend on it.
"""

from __future__ import annotations

from typing import List

from cpp_util import first_template_arg_has_pointer
from engine import FileContext, Finding, ProjectContext

_RAW_CALLS = frozenset({"rand", "srand", "time", "clock", "gettimeofday"})
_RAW_TYPES = frozenset(
    {"random_device", "mt19937", "mt19937_64", "minstd_rand",
     "default_random_engine"}
)
_ORDERED_CONTAINERS = frozenset({"map", "set", "multimap", "multiset"})


class RawNondeterminismRule:
    name = "raw-nondeterminism"

    def run(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        exempt = project.config["rng_exempt_paths"]
        if any(ctx.display_path.startswith(p) for p in exempt):
            return []
        tokens = ctx.tokens
        findings: List[Finding] = []
        n = len(tokens)
        for i, tok in enumerate(tokens):
            if tok.kind != "id":
                continue
            prev = tokens[i - 1].text if i > 0 else ""
            nxt = tokens[i + 1].text if i + 1 < n else ""

            # A preceding identifier other than `return` means this is a
            # declaration (`uint64_t time() const`) or a typed declarator,
            # not a call of the libc function.
            prev_is_decl = (
                i > 0 and tokens[i - 1].kind == "id"
                and tokens[i - 1].text not in ("return", "co_return")
            )
            if (
                tok.text in _RAW_CALLS
                and nxt == "("
                and prev not in (".", "->")
                and not prev_is_decl
            ):
                findings.append(
                    ctx.finding(
                        tok,
                        self.name,
                        f"raw nondeterministic call '{tok.text}()'; route "
                        "randomness/time through src/base/rng or the obs clock",
                    )
                )
                continue

            if tok.text in _RAW_TYPES and prev not in (".", "->"):
                findings.append(
                    ctx.finding(
                        tok,
                        self.name,
                        f"'{tok.text}' bypasses the seeded rng layer; "
                        "construct generators from src/base/rng seeds",
                    )
                )
                continue

            if (
                tok.text in _ORDERED_CONTAINERS
                and nxt == "<"
                and (prev == "::" or prev in ("", ";", "{", "}", "(", ",", "<"))
                and first_template_arg_has_pointer(tokens, i + 1)
            ):
                findings.append(
                    ctx.finding(
                        tok,
                        self.name,
                        f"pointer-keyed std::{tok.text} iterates in address "
                        "order, which ASLR randomizes per run; key by a "
                        "stable id instead",
                    )
                )
        return findings
