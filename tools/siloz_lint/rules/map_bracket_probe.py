"""map-bracket-probe: `operator[]` reads on bookkeeping maps.

The PR 5 phantom-entry bug class: probing `vm_backing_[id]` on a map that
tracks live resources default-constructs an entry for absent keys, so a
read in an audit/teardown path silently corrupts the bookkeeping it was
inspecting. The rule flags `m[k]` on configured member maps unless the
expression is an insertion context:

  * direct assignment:            m[k] = v;  m[k] += v;  (any op=)
  * insert-or-extend idiom:       m[k].push_back(v);  m[k].emplace_back(...)

Everything else — comparisons, argument passing, chained reads — must go
through find()/at()/contains() so absence stays observable. Maps are named
in the `bookkeeping_maps` config list; the defaults are the hypervisor's
lifecycle tables.
"""

from __future__ import annotations

from typing import List

from engine import FileContext, Finding, ProjectContext
from lexer import match_bracket

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
)
_EXTEND_METHODS = frozenset({"push_back", "emplace_back", "insert", "assign"})


class MapBracketProbeRule:
    name = "map-bracket-probe"

    def run(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        maps = frozenset(project.config["bookkeeping_maps"])
        tokens = ctx.tokens
        findings: List[Finding] = []
        for i, tok in enumerate(tokens[:-1]):
            if tok.kind != "id" or tok.text not in maps:
                continue
            if tokens[i + 1].text != "[":
                continue
            close = match_bracket(tokens, i + 1)
            if close < 0 or close + 1 >= len(tokens):
                continue
            nxt = tokens[close + 1]
            if nxt.text in _ASSIGN_OPS:
                continue
            if (
                nxt.text == "."
                and close + 2 < len(tokens)
                and tokens[close + 2].text in _EXTEND_METHODS
            ):
                continue
            findings.append(
                ctx.finding(
                    tok,
                    self.name,
                    f"operator[] read on bookkeeping map '{tok.text}' inserts "
                    "a phantom entry for absent keys; use find()/at()",
                )
            )
        return findings
