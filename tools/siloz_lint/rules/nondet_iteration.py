"""nondet-iteration: unordered-container iteration feeding deterministic
outputs.

The determinism contract (DESIGN.md §8/§9) promises bit-identical reports
and model-domain metrics at any `--threads N` — and on any standard library.
Iterating an `unordered_map`/`unordered_set` visits elements in a
hash-seed- and libstdc++-version-dependent order, so a loop whose body
*emits* (report rows, metric registration, trace spans, printf) or
*accumulates floating point* (FP addition does not commute bitwise) leaks
that order into contract-covered output.

Detection: pass 1 indexes every identifier declared with an unordered
container type (and every float/double variable) across the file set, so a
.cc iterating a member declared in its header still matches. Pass 2 flags
range-for loops over an indexed name — and iterator loops calling
`name.begin()` in their init — whose body reaches a configured emission
sink or a float accumulation. Loops that only mutate the container or feed
an order-insensitive integer reduction are untouched.
"""

from __future__ import annotations

from typing import List, Optional, Set

from engine import FileContext, Finding, ProjectContext
from lexer import Token, match_angle, match_brace, match_paren

_UNORDERED_TYPES = frozenset(
    {"unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"}
)
_FLOAT_TYPES = frozenset({"float", "double"})
_DECL_FOLLOW = frozenset({";", "=", "{", ",", ")", ":"})


def _collect_typed_names(tokens: List[Token], type_names) -> Set[str]:
    """Identifiers declared as `Type<...> [&*] name` or `Type name`."""
    names: Set[str] = set()
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in type_names:
            continue
        j = i + 1
        if j < n and tokens[j].text == "<":
            j = match_angle(tokens, j)
            if j < 0:
                continue
            j += 1
        while j < n and tokens[j].text in ("&", "*", "const"):
            j += 1
        if (
            j + 1 < n
            and tokens[j].kind == "id"
            and tokens[j + 1].text in _DECL_FOLLOW
        ):
            names.add(tokens[j].text)
    return names


class NondetIterationRule:
    name = "nondet-iteration"

    def collect(self, ctx: FileContext, project: ProjectContext) -> None:
        state = project.rule_state(self.name)
        state.setdefault("unordered_names", set()).update(
            _collect_typed_names(ctx.tokens, _UNORDERED_TYPES)
        )
        state.setdefault("float_names", set()).update(
            _collect_typed_names(ctx.tokens, _FLOAT_TYPES)
        )

    def run(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        state = project.rule_state(self.name)
        unordered = state.get("unordered_names", set())
        floats = state.get("float_names", set())
        sinks = frozenset(project.config["emission_sinks"])
        tokens = ctx.tokens
        findings: List[Finding] = []

        for i, tok in enumerate(tokens[:-1]):
            if tok.kind != "id" or tok.text != "for":
                continue
            if tokens[i + 1].text != "(":
                continue
            close = match_paren(tokens, i + 1)
            if close < 0:
                continue
            container = self._iterated_container(tokens, i + 1, close, unordered)
            if container is None:
                continue
            body_start, body_end = self._body_range(tokens, close)
            sink = self._body_sink(tokens, body_start, body_end, sinks, floats)
            if sink is None:
                continue
            findings.append(
                ctx.finding(
                    tok,
                    self.name,
                    f"iteration over unordered container '{container}' "
                    f"reaches {sink}; element order is not deterministic — "
                    "copy to a sorted container first",
                )
            )
        return findings

    @staticmethod
    def _iterated_container(
        tokens: List[Token], open_idx: int, close_idx: int, unordered: Set[str]
    ) -> Optional[str]:
        # Range-for: ':' at paren depth 1 (skipping '::' which lexes whole).
        depth = 0
        colon = -1
        for j in range(open_idx, close_idx):
            t = tokens[j]
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == ":" and depth == 1:
                colon = j
                break
            elif t.text == ";":
                break
        if colon > 0:
            last_id = None
            for j in range(colon + 1, close_idx):
                if tokens[j].kind == "id":
                    last_id = tokens[j].text
            return last_id if last_id in unordered else None
        # Iterator loop: `name.begin()` in the init clause.
        for j in range(open_idx, close_idx - 2):
            if (
                tokens[j].kind == "id"
                and tokens[j].text in unordered
                and tokens[j + 1].text in (".", "->")
                and tokens[j + 2].text in ("begin", "cbegin")
            ):
                return tokens[j].text
        return None

    @staticmethod
    def _body_range(tokens: List[Token], close_idx: int):
        j = close_idx + 1
        if j < len(tokens) and tokens[j].text == "{":
            end = match_brace(tokens, j)
            return j, (end if end > 0 else len(tokens))
        for k in range(j, len(tokens)):
            if tokens[k].text == ";":
                return j, k
        return j, len(tokens)

    @staticmethod
    def _body_sink(
        tokens: List[Token], start: int, end: int, sinks, floats
    ) -> Optional[str]:
        for j in range(start, min(end, len(tokens))):
            t = tokens[j]
            if t.kind == "id" and t.text in sinks:
                return f"emission sink '{t.text}'"
            if t.kind == "punct" and t.text in ("+=", "-="):
                prev_f = j > 0 and tokens[j - 1].text in floats
                nxt = tokens[j + 1] if j + 1 < len(tokens) else None
                next_f = nxt is not None and (
                    (nxt.kind == "num" and ("." in nxt.text or nxt.text[-1] in "fF"))
                    or (nxt.kind == "id" and nxt.text in floats)
                )
                if prev_f or next_f:
                    return "a floating-point accumulation"
        return None
