"""unchecked-status: a Status/Result-returning call whose value is dropped.

Pass 1 indexes every function declared with a `Status`/`Result<...>` return
type across the lint file set. Pass 2 flags expression statements of the
form `chain.to.Callee(...);` where Callee is in that index — the value was
neither tested, propagated (`SILOZ_RETURN_IF_ERROR`), nor bound.

An explicit `(void)` cast is treated as a deliberate, visible discard and is
not flagged (the cast's close-paren keeps the call off a statement start).
The `[[nodiscard]]` attribute already catches the plain form at compile
time inside this repo; the lint exists so the invariant also holds for
code paths compiled out (platform #ifdefs), templates never instantiated,
and future types that forget the attribute.
"""

from __future__ import annotations

from typing import List

from cpp_util import callee_chain_start, collect_status_functions, is_statement_start
from engine import FileContext, Finding, ProjectContext
from lexer import match_paren


class UncheckedStatusRule:
    name = "unchecked-status"

    def collect(self, ctx: FileContext, project: ProjectContext) -> None:
        state = project.rule_state(self.name)
        state.setdefault("status_functions", set()).update(
            collect_status_functions(ctx.tokens)
        )

    def run(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        status_functions = project.rule_state(self.name).get("status_functions", set())
        tokens = ctx.tokens
        findings: List[Finding] = []
        for i, tok in enumerate(tokens[:-1]):
            if tok.kind != "id" or tok.text not in status_functions:
                continue
            if tokens[i + 1].text != "(":
                continue
            start = callee_chain_start(tokens, i)
            if not is_statement_start(tokens, start):
                continue
            close = match_paren(tokens, i + 1)
            if close < 0 or close + 1 >= len(tokens):
                continue
            if tokens[close + 1].text != ";":
                continue
            findings.append(
                ctx.finding(
                    tok,
                    self.name,
                    f"result of Status/Result-returning call '{tok.text}' is "
                    "discarded; bind it, test .ok(), or propagate with "
                    "SILOZ_RETURN_IF_ERROR",
                )
            )
        return findings
