"""Rule registry for siloz-lint. Order here fixes nothing user-visible —
findings are globally sorted by the engine — but keep it alphabetical."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from rules.fault_point_coverage import FaultPointCoverageRule
from rules.map_bracket_probe import MapBracketProbeRule
from rules.nondet_iteration import NondetIterationRule
from rules.raw_nondeterminism import RawNondeterminismRule
from rules.unchecked_status import UncheckedStatusRule

ALL_RULES = [
    FaultPointCoverageRule(),
    MapBracketProbeRule(),
    NondetIterationRule(),
    RawNondeterminismRule(),
    UncheckedStatusRule(),
]

RULE_NAMES = sorted(r.name for r in ALL_RULES)
