"""Rule engine for siloz-lint: file loading, config, suppressions, driving.

A rule is an object with:
    name: str                       stable kebab-case rule id
    collect(ctx, project) -> None   optional first pass over every file
    run(ctx, project) -> [Finding]  second pass, produces findings

The engine runs `collect` for every rule over every file, then `run`, then
drops findings covered by a suppression comment. Suppressions are written

    // siloz-lint: allow(rule-name): why this is a false positive

on the finding's own line or the line directly above it; `allow(all)`
suppresses every rule. The explanation after the second colon is mandatory
by convention (DESIGN.md §12) but not enforced mechanically.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, NamedTuple, Optional

from lexer import Token, tokenize


class Finding(NamedTuple):
    file: str
    line: int
    col: int
    rule: str
    message: str


class FileContext:
    """One parsed translation unit (or header) as the rules see it."""

    def __init__(self, path: str, display_path: str, text: str):
        self.path = path
        self.display_path = display_path
        self.text = text
        self.tokens, self.comments = tokenize(text)

    def finding(self, token: Token, rule: str, message: str) -> Finding:
        return Finding(self.display_path, token.line, token.col, rule, message)


class ProjectContext:
    """Cross-file state shared between the collect and run passes."""

    def __init__(self, config: "Config"):
        self.config = config
        # rule name -> arbitrary per-rule state dict
        self.state: Dict[str, Dict] = {}

    def rule_state(self, rule_name: str) -> Dict:
        return self.state.setdefault(rule_name, {})


_DEFAULT_CONFIG = {
    # Directories/files scanned when no explicit paths are given, relative
    # to the repo root (the directory holding the config file).
    "paths": ["src", "tools"],
    "exclude_paths": ["tools/siloz_lint"],
    # map-bracket-probe: member maps where a bare `m[k]` read silently
    # inserts a phantom entry (the PR 5 bug class). Extend per-project here.
    "bookkeeping_maps": ["vm_backing_", "vm_ept_pages_"],
    # nondet-iteration: callee names that emit into reports/metrics/traces.
    "emission_sinks": [
        "RecordSpan", "Observe", "Increment", "GetCounter", "GetGauge",
        "GetHistogram", "AppendRow", "AppendLine", "Emit", "WriteRow",
        "fprintf", "printf", "SILOZ_LOG",
    ],
    # fault-point-coverage: scoped directories and the resource-operation
    # name shapes that must carry (or transitively reach) SILOZ_FAULT_POINT.
    "fault_point_dirs": ["src/hostmem", "src/ept", "src/siloz"],
    "fault_point_name_regex":
        "^(Allocate|Alloc[A-Z_]|Create|Reserve|Acquire|Free|Release|Return|Destroy)",
    # raw-nondeterminism: paths allowed to touch raw entropy/clock sources.
    "rng_exempt_paths": ["src/base/rng"],
}


class Config:
    def __init__(self, data: Optional[dict] = None, root: str = "."):
        self.root = os.path.abspath(root)
        merged = dict(_DEFAULT_CONFIG)
        if data:
            unknown = set(data) - set(_DEFAULT_CONFIG)
            if unknown:
                raise ValueError(f"unknown config keys: {sorted(unknown)}")
            merged.update(data)
        self.data = merged

    @classmethod
    def load(cls, path: Optional[str], root: str) -> "Config":
        if path is None:
            candidate = os.path.join(root, ".siloz-lint.json")
            path = candidate if os.path.exists(candidate) else None
        if path is None:
            return cls(None, root)
        with open(path, "r", encoding="utf-8") as f:
            return cls(json.load(f), root)

    def __getitem__(self, key: str):
        return self.data[key]


_SOURCE_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")

_ALLOW_RE = re.compile(r"siloz-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]+?)\s*\)")


def discover_files(config: Config, explicit: List[str]) -> List[str]:
    """Resolves the file set to lint, repo-relative, sorted, deduplicated."""
    root = config.root
    roots = explicit if explicit else [os.path.join(root, p) for p in config["paths"]]
    excludes = [os.path.normpath(p) for p in config["exclude_paths"]]
    out = []
    for entry in roots:
        if os.path.isfile(entry):
            out.append(os.path.abspath(entry))
            continue
        for dirpath, dirnames, filenames in os.walk(entry):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(_SOURCE_EXTS):
                    out.append(os.path.abspath(os.path.join(dirpath, name)))
    result = []
    seen = set()
    for path in out:
        rel = os.path.relpath(path, root)
        if any(rel == ex or rel.startswith(ex + os.sep) for ex in excludes):
            continue
        if rel not in seen:
            seen.add(rel)
            result.append(path)
    result.sort(key=lambda p: os.path.relpath(p, root))
    return result


def suppressed_rules(ctx: FileContext, line: int) -> set:
    """Rule names allowed on `line` by a comment on it or the contiguous
    comment block ending on the line directly above it."""
    allowed = set()

    def absorb(comment: str) -> None:
        for match in _ALLOW_RE.finditer(comment):
            for name in match.group(1).split(","):
                allowed.add(name.strip())

    if line in ctx.comments:
        absorb(ctx.comments[line])
    probe = line - 1
    while probe >= 1 and probe in ctx.comments:
        absorb(ctx.comments[probe])
        probe -= 1
    return allowed


class Engine:
    def __init__(self, rules: List, config: Config):
        self.rules = rules
        self.config = config

    def run(self, paths: List[str], frontend) -> List[Finding]:
        root = self.config.root
        contexts = []
        for path in paths:
            text = frontend.read(path)
            contexts.append(FileContext(path, os.path.relpath(path, root), text))

        project = ProjectContext(self.config)
        for rule in self.rules:
            collect = getattr(rule, "collect", None)
            if collect is not None:
                for ctx in contexts:
                    collect(ctx, project)

        findings: List[Finding] = []
        for ctx in contexts:
            for rule in self.rules:
                for finding in rule.run(ctx, project):
                    allowed = suppressed_rules(ctx, finding.line)
                    if finding.rule in allowed or "all" in allowed:
                        continue
                    findings.append(finding)
        findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule, f.message))
        return findings
