#!/usr/bin/env python3
"""siloz-lint: project-invariant static analyzer for the siloz tree.

Checks the five invariants the repo's history shows are easy to break and
expensive to debug after the fact (see DESIGN.md §12 for the catalog):

  unchecked-status      discarded Status/Result call results
  map-bracket-probe     phantom-inserting operator[] reads on bookkeeping maps
  nondet-iteration      unordered iteration feeding reports/metrics/floats
  fault-point-coverage  resource ops unreachable by the fault sweep
  raw-nondeterminism    raw entropy/clock use outside src/base/rng

Usage:
  tools/siloz_lint/siloz_lint.py                     # lint src/ + tools/
  tools/siloz_lint/siloz_lint.py src/siloz tests/x.cc
  tools/siloz_lint/siloz_lint.py --format=json
  tools/siloz_lint/siloz_lint.py --frontend=tokens   # pin the pure-Python lexer

Exit codes: 0 clean, 1 findings reported, 2 usage or internal error.
Suppress a deliberate pattern with a trailing or preceding-line comment:
  // siloz-lint: allow(rule-name): why this is safe here
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from engine import Config, Engine, discover_files
from frontends import make_frontend
from reporters import to_json, to_text
from rules import ALL_RULES, RULE_NAMES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="siloz-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: config 'paths')",
    )
    parser.add_argument(
        "--root", default=None,
        help="repo root (default: two levels above this script)",
    )
    parser.add_argument("--config", default=None, help="config JSON path")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format",
    )
    parser.add_argument(
        "--frontend", choices=("auto", "tokens", "libclang"), default="auto",
    )
    parser.add_argument(
        "--compile-commands", default=None,
        help="compile_commands.json for the libclang frontend "
        "(default: <root>/build/compile_commands.json)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, choices=RULE_NAMES,
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULE_NAMES))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    try:
        config = Config.load(args.config, root)
    except (OSError, ValueError) as err:
        print(f"siloz-lint: bad config: {err}", file=sys.stderr)
        return 2

    compile_commands = args.compile_commands or os.path.join(
        config.root, "build", "compile_commands.json"
    )
    try:
        frontend = make_frontend(args.frontend, compile_commands)
    except Exception as err:
        print(f"siloz-lint: frontend '{args.frontend}': {err}", file=sys.stderr)
        return 2

    rules = ALL_RULES
    if args.rule:
        wanted = set(args.rule)
        rules = [r for r in ALL_RULES if r.name in wanted]

    paths = discover_files(config, args.paths)
    if not paths:
        print("siloz-lint: no input files", file=sys.stderr)
        return 2

    try:
        findings = Engine(rules, config).run(paths, frontend)
    except RuntimeError as err:
        print(f"siloz-lint: {err}", file=sys.stderr)
        return 2

    out = to_json(findings) if args.output_format == "json" else to_text(findings)
    sys.stdout.write(out)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
