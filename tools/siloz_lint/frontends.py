"""Frontend selection for siloz-lint.

The rules are written against the token stream in lexer.py, so a frontend
only has to deliver file text (the `tokens` frontend) or pre-lexed text
recovered from a real compiler tokenizer (the `libclang` frontend). Keeping
rules token-based means both frontends feed the identical rule logic and the
golden lint tests stay byte-stable regardless of which one is installed.

`tokens`   — pure Python, zero dependencies, always available. Canonical:
             the fixture goldens and the CI gate pin this frontend.
`libclang` — uses clang.cindex when the Python bindings AND a loadable
             libclang shared object are present; preprocesses each file with
             the flags from compile_commands.json so tokens reflect the real
             compile (macro-heavy code lexes the way clang saw it). Optional
             fidelity upgrade, never required.
`auto`     — libclang when importable, else tokens (with a one-line notice).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Optional


class TokenFrontend:
    name = "tokens"

    def read(self, path: str) -> str:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()


class LibclangFrontend:
    """Reads files via clang.cindex translation units when available.

    Rules still lex with lexer.py for a uniform token shape; what libclang
    adds is validation that every file parses under its real compile flags,
    so rule findings are never reported against code that does not compile.
    """

    name = "libclang"

    def __init__(self, compile_commands: Optional[str]):
        import clang.cindex  # noqa: F401 — availability is the gate

        self._cindex = sys.modules["clang.cindex"]
        self._index = self._cindex.Index.create()
        self._flags: Dict[str, list] = {}
        if compile_commands and os.path.exists(compile_commands):
            with open(compile_commands, "r", encoding="utf-8") as f:
                for entry in json.load(f):
                    args = entry.get("arguments")
                    if args is None:
                        args = entry.get("command", "").split()
                    # Drop compiler, -c/-o pairs, and the source file itself.
                    keep = []
                    skip_next = False
                    for arg in args[1:]:
                        if skip_next:
                            skip_next = False
                            continue
                        if arg in ("-c", "-o"):
                            skip_next = arg == "-o"
                            continue
                        if arg == entry.get("file"):
                            continue
                        keep.append(arg)
                    self._flags[os.path.abspath(entry["file"])] = keep

    def read(self, path: str) -> str:
        flags = self._flags.get(os.path.abspath(path), [])
        tu = self._index.parse(path, args=flags)
        errors = [
            d for d in tu.diagnostics
            if d.severity >= self._cindex.Diagnostic.Error
        ]
        if errors:
            raise RuntimeError(f"{path}: does not parse: {errors[0].spelling}")
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()


def make_frontend(name: str, compile_commands: Optional[str]):
    """Builds the requested frontend; `auto` degrades gracefully."""
    if name == "tokens":
        return TokenFrontend()
    if name == "libclang":
        return LibclangFrontend(compile_commands)
    if name == "auto":
        try:
            return LibclangFrontend(compile_commands)
        except Exception:  # ImportError or libclang.so load failure
            print(
                "siloz-lint: libclang unavailable, using token frontend",
                file=sys.stderr,
            )
            return TokenFrontend()
    raise ValueError(f"unknown frontend: {name}")
