// siloz_audit: stand-alone static isolation-domain analyzer.
//
// Proves the four Siloz isolation invariants (decoder invertibility, domain
// closure, guard fencing, blast-radius containment) for a machine
// configuration without running any workload. Exit codes: 0 = all invariants
// hold, 2 = findings, 1 = usage/boot error. CI runs this on the default
// dual-socket Skylake platform and fails on any finding.
//
// Usage:
//   siloz_audit [--platform NAME] [--decoder skylake|snc2|linear] [--ddr5]
//               [--subarray-rows N] [--silicon-rows N] [--host-groups N]
//               [--ept-block N] [--ept-offset N] [--stride BYTES]
//               [--random-probes N] [--exhaustive] [--max-findings N]
//               [--corrupt none|shifted-jump|broken-inverse]
//               [--scrambling] [--threads N] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/addr/decoder.h"
#include "src/addr/platform.h"
#include "src/audit/auditor.h"
#include "src/audit/corrupt_decoder.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/ept/phys_memory.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/siloz/conservation.h"
#include "src/siloz/hypervisor.h"

using namespace siloz;

namespace {

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

uint64_t FlagValue(int argc, char** argv, const char* flag, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 0);
    }
  }
  return fallback;
}

const char* FlagString(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return fallback;
}

int Usage() {
  std::fprintf(stderr,
               "usage: siloz_audit [options]\n"
               "  --platform NAME                 registered platform (skylake, cascadelake,\n"
               "                                  zen, ddr5): decoder family, geometry, and\n"
               "                                  remap semantics; overrides --decoder/--ddr5\n"
               "  --decoder skylake|snc2|linear   platform decoder (default skylake)\n"
               "  --ddr5                          DDR5 geometry + remap semantics\n"
               "  --subarray-rows N               boot parameter (default 1024)\n"
               "  --silicon-rows N                silicon ground truth (default = boot value)\n"
               "  --host-groups N                 host groups per socket (default 2)\n"
               "  --ept-block N / --ept-offset N  guard-row block geometry (default 32/12)\n"
               "  --stride BYTES                  physical probe stride (default 256 KiB)\n"
               "  --random-probes N               extra seeded probes (default 4096)\n"
               "  --exhaustive                    probe every 4 KiB page\n"
               "  --max-findings N                findings kept per invariant (default 16)\n"
               "  --corrupt none|shifted-jump|broken-inverse\n"
               "                                  audit against a deliberately wrong decoder\n"
               "  --scrambling                    model vendor row-bit scrambling\n"
               "  --threads N                     blast-radius scan workers (0 = auto,\n"
               "                                  1 = serial; findings identical for all N)\n"
               "  --fault-sweep                   instead of the static audit, run the\n"
               "                                  CreateVm and MigrateVm fault-injection\n"
               "                                  sweeps: fail each allocation point once\n"
               "                                  and verify the lifecycle conservation\n"
               "                                  invariants (migration needs >= 2 sockets)\n"
               "  --json                          machine-readable report\n"
               "  --metrics-out FILE              write the metrics registry as JSON (model\n"
               "                                  values identical for every --threads)\n"
               "  --trace-out FILE                record + write a Chrome trace-event log\n");
  return 1;
}

// A CI gate must not silently ignore a typo'd flag and report PASS.
bool ValidateFlags(int argc, char** argv) {
  static const char* kValueFlags[] = {"--platform",  "--decoder",       "--subarray-rows",
                                      "--silicon-rows", "--host-groups", "--ept-block",
                                      "--ept-offset", "--stride",       "--random-probes",
                                      "--max-findings", "--corrupt",    "--threads",
                                      "--metrics-out", "--trace-out"};
  static const char* kBoolFlags[] = {"--ddr5",  "--exhaustive", "--scrambling", "--json",
                                     "--fault-sweep", "--help", "-h"};
  for (int i = 1; i < argc; ++i) {
    bool known = false;
    for (const char* flag : kValueFlags) {
      if (std::strcmp(argv[i], flag) == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value\n", flag);
          return false;
        }
        ++i;
        known = true;
        break;
      }
    }
    for (const char* flag : kBoolFlags) {
      known = known || std::strcmp(argv[i], flag) == 0;
    }
    if (!known) {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!ValidateFlags(argc, argv)) {
    return Usage();
  }
  if (HasFlag(argc, argv, "--help") || HasFlag(argc, argv, "-h")) {
    return Usage();
  }

  const bool ddr5 = HasFlag(argc, argv, "--ddr5");
  const std::string platform = FlagString(argc, argv, "--platform", "");
  const PlatformInfo* platform_info = nullptr;
  if (!platform.empty()) {
    platform_info = FindPlatform(platform);
    if (platform_info == nullptr) {
      std::fprintf(stderr, "unknown platform '%s'\n", platform.c_str());
      return Usage();
    }
  }
  DramGeometry geometry = platform_info != nullptr ? platform_info->geometry
                          : ddr5                   ? Ddr5Geometry()
                                                   : DramGeometry{};

  SilozConfig config;
  config.rows_per_subarray =
      static_cast<uint32_t>(FlagValue(argc, argv, "--subarray-rows", geometry.rows_per_subarray));
  config.host_groups_per_socket =
      static_cast<uint32_t>(FlagValue(argc, argv, "--host-groups", config.host_groups_per_socket));
  config.ept_block_row_groups =
      static_cast<uint32_t>(FlagValue(argc, argv, "--ept-block", config.ept_block_row_groups));
  config.ept_row_group_offset =
      static_cast<uint32_t>(FlagValue(argc, argv, "--ept-offset", config.ept_row_group_offset));
  config.uniform_internal_addressing =
      ddr5 || (platform_info != nullptr && platform_info->uniform_internal_addressing);
  geometry.rows_per_subarray = config.rows_per_subarray;

  const std::string decoder_name = FlagString(argc, argv, "--decoder", "skylake");
  std::unique_ptr<AddressDecoder> decoder;
  if (platform_info != nullptr) {
    Result<std::unique_ptr<AddressDecoder>> made = platform_info->make(geometry);
    if (!made.ok()) {
      std::fprintf(stderr, "platform '%s': %s\n", platform.c_str(),
                   made.error().ToString().c_str());
      return 1;
    }
    decoder = std::move(*made);
  } else if (decoder_name == "skylake") {
    decoder = std::make_unique<SkylakeDecoder>(geometry);
  } else if (decoder_name == "snc2") {
    decoder = std::make_unique<SncDecoder>(geometry, 2);
  } else if (decoder_name == "linear") {
    decoder = std::make_unique<LinearDecoder>(geometry);
  } else {
    std::fprintf(stderr, "unknown decoder '%s'\n", decoder_name.c_str());
    return Usage();
  }

  RemapConfig remap = platform_info != nullptr ? platform_info->remap
                      : ddr5                   ? Ddr5RemapConfig()
                                               : RemapConfig{};
  remap.vendor_scrambling = HasFlag(argc, argv, "--scrambling");

  if (HasFlag(argc, argv, "--fault-sweep")) {
    // Lifecycle mode: prove every CreateVm error path conserves resources
    // (DESIGN.md §11) on this platform configuration.
    FlatPhysMemory memory;
    SilozHypervisor hypervisor(*decoder, memory, config);
    Status boot = hypervisor.Boot();
    if (!boot.ok()) {
      std::fprintf(stderr, "boot failed: %s\n", boot.error().ToString().c_str());
      return 1;
    }
    // A VM touching every reservation class: multi-run RAM, ROM, an MMIO
    // window, and EPT table pages.
    VmConfig vm;
    vm.name = "fault-sweep";
    vm.memory_bytes = 8_MiB;
    vm.rom_bytes = 2_MiB;
    vm.mmio_bytes = 64_KiB;
    vm.socket = 0;
    Result<FaultSweepReport> sweep = RunCreateVmFaultSweep(hypervisor, vm);
    if (!sweep.ok()) {
      std::fprintf(stderr, "fault sweep FAILED: %s\n", sweep.error().ToString().c_str());
      return 2;
    }
    std::printf(
        "fault sweep PASS: %llu points probed, %llu faults injected "
        "(%llu failed the create, %llu tolerated); all error paths conserved\n",
        static_cast<unsigned long long>(sweep->points_probed),
        static_cast<unsigned long long>(sweep->faults_injected),
        static_cast<unsigned long long>(sweep->creates_failed),
        static_cast<unsigned long long>(sweep->creates_survived));
    // The same treatment for MigrateVm: fail each allocation point of the
    // cross-socket move and verify the VM stays intact on its source (or,
    // when the fault is tolerated, passes the isolation audit on its
    // target). Needs a second socket to migrate to.
    if (geometry.sockets < 2) {
      std::printf("migrate sweep SKIPPED: platform has %u socket(s)\n", geometry.sockets);
      return 0;
    }
    Result<FaultSweepReport> migrate_sweep =
        RunMigrateVmFaultSweep(hypervisor, vm, /*target_socket=*/1);
    if (!migrate_sweep.ok()) {
      std::fprintf(stderr, "migrate sweep FAILED: %s\n",
                   migrate_sweep.error().ToString().c_str());
      return 2;
    }
    std::printf(
        "migrate sweep PASS: %llu points probed, %llu faults injected "
        "(%llu failed the migration, %llu tolerated); all error paths conserved\n",
        static_cast<unsigned long long>(migrate_sweep->points_probed),
        static_cast<unsigned long long>(migrate_sweep->faults_injected),
        static_cast<unsigned long long>(migrate_sweep->creates_failed),
        static_cast<unsigned long long>(migrate_sweep->creates_survived));
    return 0;
  }

  audit::Options options;
  options.silicon_rows_per_subarray =
      static_cast<uint32_t>(FlagValue(argc, argv, "--silicon-rows", 0));
  options.probe_stride = FlagValue(argc, argv, "--stride", options.probe_stride);
  options.random_probes = FlagValue(argc, argv, "--random-probes", options.random_probes);
  options.exhaustive = HasFlag(argc, argv, "--exhaustive");
  options.max_findings_per_invariant =
      static_cast<size_t>(FlagValue(argc, argv, "--max-findings", 16));
  options.threads = static_cast<uint32_t>(FlagValue(argc, argv, "--threads", 0));

  // Optional negative mode: the machine's "real" mapping deviates from the
  // decoder the hypervisor boots with, so the audit should FAIL.
  const std::string corrupt = FlagString(argc, argv, "--corrupt", "none");
  std::unique_ptr<audit::CorruptedDecoder> corrupted;
  const AddressDecoder* truth = decoder.get();
  if (corrupt != "none") {
    // The mapping-jump period to shift by: the platform's own for --platform
    // runs (XOR-matrix decoders have no skx region), the skx region otherwise.
    const uint64_t region = platform_info != nullptr
                                ? ShiftedJumpPeriod(*platform_info, geometry)
                                : SkylakeDecoder(geometry).region_bytes();
    if (corrupt == "shifted-jump") {
      corrupted = std::make_unique<audit::CorruptedDecoder>(
          *decoder, audit::Corruption::kShiftedJump, region);
    } else if (corrupt == "broken-inverse") {
      corrupted = std::make_unique<audit::CorruptedDecoder>(
          *decoder, audit::Corruption::kBrokenInverse, region);
    } else {
      std::fprintf(stderr, "unknown corruption '%s'\n", corrupt.c_str());
      return Usage();
    }
    truth = corrupted.get();
  }

  const std::string metrics_out = FlagString(argc, argv, "--metrics-out", "");
  const std::string trace_out = FlagString(argc, argv, "--trace-out", "");
  if (!trace_out.empty()) {
    obs::Tracer::Global().Enable();
  }

  Result<audit::Report> report =
      audit::AuditProvisioningPlan(*decoder, *truth, config, remap, options);
  if (!report.ok()) {
    std::fprintf(stderr, "audit setup failed: %s\n", report.error().ToString().c_str());
    return 1;
  }
  if (HasFlag(argc, argv, "--json")) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::printf("platform: %s, decoder %s (audited against %s)\n", geometry.ToString().c_str(),
                decoder->name().c_str(), truth->name().c_str());
    std::printf("%s", report->ToText().c_str());
  }
  // Scheduler/timing metrics go to stderr so the report on stdout (and the
  // JSON) stays byte-identical across thread counts.
  std::fprintf(stderr, "blast-radius scan: %u workers, %llu tasks (%llu stolen), wall %.1f ms\n",
               report->scan_pool.workers,
               static_cast<unsigned long long>(report->scan_pool.tasks),
               static_cast<unsigned long long>(report->scan_pool.steals), report->scan_wall_ms);
  // AuditProvisioningPlan keeps its hypervisor and pool function-local, so
  // every model counter has been flushed by now.
  if (!metrics_out.empty() && !obs::WriteMetricsJson(metrics_out)) {
    return 1;
  }
  if (!trace_out.empty() && !obs::WriteTraceJson(trace_out)) {
    return 1;
  }
  return report->ok() ? 0 : 2;
}
